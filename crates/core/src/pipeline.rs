//! Segmented (pipelined) Wrht — an analytic extension.
//!
//! The poster's Wrht moves the **whole** gradient in every step, so the
//! serialization term is paid once per tree level. Splitting the buffer
//! into `k` segments and pipelining them through the tree overlaps level
//! `ℓ` of segment `s` with level `ℓ+1` of segment `s−1`: the schedule runs
//! for `steps + k − 1` ticks moving `S/k` bytes per tick instead of
//! `steps` ticks moving `S`.
//!
//! Pipelining makes previously step-disjoint tree levels *concurrent* on
//! the ring, so each concurrent stage must own a wavelength sub-budget.
//! We model the conservative partition: with `c = min(k, steps)` stages in
//! flight, each stage gets `⌊w/c⌋` wavelengths (at least its requirement
//! must fit, else that `k` is infeasible). This keeps every assignment
//! conflict-free by construction — the same guarantee the stepped schedule
//! has — at the price of underusing wavelengths when stages need fewer.
//!
//! The solver [`optimal_segments`] picks the `k` minimizing the modelled
//! time; [`segment_sweep`] exposes the whole trade-off curve for the
//! ablation.

use crate::cost::CostBreakdown;
use crate::plan::WrhtPlan;
use optical_sim::OpticalConfig;
use serde::{Deserialize, Serialize};

/// One point of the segmentation trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentPoint {
    /// Segment count `k`.
    pub segments: usize,
    /// Modelled pipelined time, seconds (`None` encoded as infinity when
    /// the wavelength sub-budgets cannot fit the plan's requirements).
    pub time_s: f64,
    /// Whether the wavelength partition is feasible at this `k`.
    pub feasible: bool,
}

/// Per-step wavelength requirement list of a plan (reduce levels,
/// optional all-to-all, broadcast levels).
fn step_requirements(plan: &WrhtPlan) -> Vec<usize> {
    let mut reqs: Vec<usize> = plan.levels.iter().map(|l| l.lambda_requirement).collect();
    if let Some(ata) = &plan.alltoall {
        reqs.push(ata.lambda_requirement);
    }
    let bcast: Vec<usize> = plan
        .levels
        .iter()
        .rev()
        .map(|l| l.lambda_requirement)
        .collect();
    reqs.extend(bcast);
    reqs
}

/// Longest member→rep hop distance per step (mirrors `cost::level_max_hops`).
fn step_hops(plan: &WrhtPlan) -> Vec<usize> {
    let level_hops = |level: &crate::plan::Level| {
        level
            .groups
            .iter()
            .map(|g| {
                let first = *g.members.first().expect("non-empty");
                let last = *g.members.last().expect("non-empty");
                (g.rep - first).max(last - g.rep)
            })
            .max()
            .unwrap_or(0)
    };
    let mut hops: Vec<usize> = plan.levels.iter().map(level_hops).collect();
    if let Some(ata) = &plan.alltoall {
        let n = plan.n.max(2);
        let h = ata
            .reps
            .iter()
            .flat_map(|&a| ata.reps.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| {
                let cw = (b + n - a) % n;
                cw.min(n - cw)
            })
            .max()
            .unwrap_or(0);
        hops.push(h);
    }
    let bcast: Vec<usize> = plan.levels.iter().rev().map(level_hops).collect();
    hops.extend(bcast);
    hops
}

/// Modelled time of the `k`-segment pipelined execution of `plan`.
///
/// Returns an infeasible point when some stage's wavelength requirement
/// exceeds its `⌊w/c⌋` sub-budget.
#[must_use]
pub fn segmented_time(
    plan: &WrhtPlan,
    config: &OpticalConfig,
    bytes: u64,
    k: usize,
) -> SegmentPoint {
    assert!(k >= 1, "at least one segment");
    let reqs = step_requirements(plan);
    let hops = step_hops(plan);
    let steps = reqs.len();
    if steps == 0 {
        return SegmentPoint {
            segments: k,
            time_s: 0.0,
            feasible: true,
        };
    }
    let concurrency = k.min(steps);
    let sub_budget = config.wavelengths / concurrency;
    let timing = config.timing();
    let seg_bytes = bytes.div_ceil(k as u64);

    let mut tick = 0.0f64;
    for (&req, &h) in reqs.iter().zip(&hops) {
        if req > sub_budget {
            return SegmentPoint {
                segments: k,
                time_s: f64::INFINITY,
                feasible: false,
            };
        }
        let lanes = (sub_budget / req.max(1)).max(1);
        tick = tick.max(timing.transfer_time(seg_bytes, lanes, h));
    }
    SegmentPoint {
        segments: k,
        time_s: (steps + k - 1) as f64 * tick,
        feasible: true,
    }
}

/// The full trade-off curve for `k ∈ 1..=max_k`.
#[must_use]
pub fn segment_sweep(
    plan: &WrhtPlan,
    config: &OpticalConfig,
    bytes: u64,
    max_k: usize,
) -> Vec<SegmentPoint> {
    (1..=max_k.max(1))
        .map(|k| segmented_time(plan, config, bytes, k))
        .collect()
}

/// Pick the segment count minimizing modelled time; ties go to smaller `k`.
#[must_use]
pub fn optimal_segments(
    plan: &WrhtPlan,
    config: &OpticalConfig,
    bytes: u64,
    max_k: usize,
) -> SegmentPoint {
    segment_sweep(plan, config, bytes, max_k)
        .into_iter()
        .filter(|p| p.feasible)
        .min_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite"))
        .expect("k = 1 is always feasible")
}

/// Compare against the unsegmented cost model: `k = 1` must reproduce the
/// stepped plan's per-step maximum structure (a looser, max-based bound of
/// [`crate::cost::predict_time_s`]).
#[must_use]
pub fn unsegmented_upper_bound(cost: &CostBreakdown) -> f64 {
    let worst = cost.per_step_s.iter().copied().fold(0.0f64, f64::max);
    worst * cost.per_step_s.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::predict_time_s;
    use crate::plan::build_plan;

    fn setup(n: usize, m: usize, w: usize) -> (WrhtPlan, OpticalConfig) {
        (build_plan(n, m, w).unwrap(), OpticalConfig::new(n, w))
    }

    #[test]
    fn one_segment_matches_the_stepped_bound() {
        let (plan, cfg) = setup(256, 8, 64);
        let bytes = 100 << 20;
        let k1 = segmented_time(&plan, &cfg, bytes, 1);
        assert!(k1.feasible);
        let cost = predict_time_s(&plan, &cfg, bytes);
        // k = 1 pays steps * max-step-time; the exact stepped sum is <= that.
        assert!(cost.total_s() <= k1.time_s + 1e-12);
        assert!((k1.time_s - unsegmented_upper_bound(&cost)).abs() < 1e-12);
    }

    #[test]
    fn pipelining_helps_for_large_messages() {
        let (plan, cfg) = setup(256, 8, 64);
        let bytes = 500 << 20;
        let base = segmented_time(&plan, &cfg, bytes, 1).time_s;
        let best = optimal_segments(&plan, &cfg, bytes, 8);
        assert!(best.feasible);
        assert!(
            best.time_s <= base,
            "pipelining must not hurt: {} vs {base}",
            best.time_s
        );
    }

    #[test]
    fn infeasible_when_sub_budget_too_small() {
        // m = 9 needs 4 wavelengths per tree step; with w = 8 and k >= 3
        // the sub-budget floor(8/3) = 2 < 4 is infeasible.
        let (plan, cfg) = setup(81, 9, 8);
        let p = segmented_time(&plan, &cfg, 1 << 20, 3);
        assert!(!p.feasible);
        assert!(p.time_s.is_infinite());
        // k = 1 is always feasible.
        assert!(segmented_time(&plan, &cfg, 1 << 20, 1).feasible);
    }

    #[test]
    fn optimal_is_argmin_of_the_sweep() {
        let (plan, cfg) = setup(128, 4, 64);
        let bytes = 64 << 20;
        let sweep = segment_sweep(&plan, &cfg, bytes, 16);
        let best = optimal_segments(&plan, &cfg, bytes, 16);
        for p in sweep.iter().filter(|p| p.feasible) {
            assert!(best.time_s <= p.time_s + 1e-15);
        }
        assert_eq!(sweep.len(), 16);
    }

    #[test]
    fn overhead_limits_segmentation() {
        // With a huge per-message overhead, many tiny segments lose.
        let plan = build_plan(64, 4, 16).unwrap();
        let cfg = OpticalConfig::new(64, 16).with_message_overhead(1e-3);
        let best = optimal_segments(&plan, &cfg, 1 << 20, 64);
        assert!(
            best.segments < 64,
            "alpha must cap k, got {}",
            best.segments
        );
    }

    #[test]
    fn empty_plan_costs_nothing() {
        let plan = build_plan(1, 2, 4).unwrap();
        let cfg = OpticalConfig::new(2, 4);
        let p = segmented_time(&plan, &cfg, 1 << 20, 4);
        assert_eq!(p.time_s, 0.0);
        assert!(p.feasible);
    }
}
