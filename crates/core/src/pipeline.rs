//! Segmented (pipelined) Wrht — an analytic extension.
//!
//! The poster's Wrht moves the **whole** gradient in every step, so the
//! serialization term is paid once per tree level. Splitting the buffer
//! into `k` segments and pipelining them through the tree overlaps level
//! `ℓ` of segment `s` with level `ℓ+1` of segment `s−1`: the schedule runs
//! for `steps + k − 1` ticks moving `S/k` bytes per tick instead of
//! `steps` ticks moving `S`.
//!
//! Pipelining makes previously step-disjoint tree levels *concurrent* on
//! the ring, so each concurrent stage must own a wavelength sub-budget.
//! We model the conservative partition: with `c = min(k, steps)` stages in
//! flight, the budget is split per step **residue mod `c`** — any `c`
//! consecutive steps occupy distinct residues, so the partition is
//! conflict-free by construction, the same guarantee the stepped schedule
//! has. Each residue gets `⌊w/c⌋` wavelengths and the `w mod c` remainder
//! lanes are distributed one-per-residue instead of being wasted. A stage
//! whose sub-budget is zero (or below its requirement) makes that `k`
//! infeasible — a zero-wavelength stage can make no progress, even for
//! degenerate steps that request nothing.
//!
//! The solver [`optimal_segments`] picks the `k` minimizing the modelled
//! time; [`segment_sweep`] exposes the whole trade-off curve for the
//! ablation.

use crate::cost::CostBreakdown;
use crate::plan::{Level, WrhtPlan};
use optical_sim::OpticalConfig;
use serde::{Deserialize, Serialize};

/// One point of the segmentation trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentPoint {
    /// Segment count `k`.
    pub segments: usize,
    /// Modelled pipelined time, seconds (`None` encoded as infinity when
    /// the wavelength sub-budgets cannot fit the plan's requirements).
    pub time_s: f64,
    /// Whether the wavelength partition is feasible at this `k`.
    pub feasible: bool,
}

/// Per-step wavelength requirement list of a plan (reduce levels,
/// optional all-to-all, broadcast levels).
fn step_requirements(plan: &WrhtPlan) -> Vec<usize> {
    let mut reqs: Vec<usize> = plan.levels.iter().map(|l| l.lambda_requirement).collect();
    if let Some(ata) = &plan.alltoall {
        reqs.push(ata.lambda_requirement);
    }
    let bcast: Vec<usize> = plan
        .levels
        .iter()
        .rev()
        .map(|l| l.lambda_requirement)
        .collect();
    reqs.extend(bcast);
    reqs
}

/// Longest member→rep hop distance per step (the same spans
/// [`crate::cost::predict_time_s`] charges, via [`crate::plan::Level::max_hop_span`]).
fn step_hops(plan: &WrhtPlan) -> Vec<usize> {
    let mut hops: Vec<usize> = plan.levels.iter().map(Level::max_hop_span).collect();
    if plan.alltoall.is_some() {
        hops.push(plan.alltoall_hop_span());
    }
    let bcast: Vec<usize> = plan.levels.iter().rev().map(Level::max_hop_span).collect();
    hops.extend(bcast);
    hops
}

/// Modelled time of the `k`-segment pipelined execution of `plan`.
///
/// Each step's sub-budget is its residue's share of the partition:
/// `⌊w/c⌋`, plus one of the `w mod c` remainder lanes for the low
/// residues. Returns an infeasible point when some stage's wavelength
/// requirement exceeds its sub-budget, or when a stage's sub-budget is
/// zero (a zero-wavelength stage can make no progress, even when it
/// requests nothing).
#[must_use]
pub fn segmented_time(
    plan: &WrhtPlan,
    config: &OpticalConfig,
    bytes: u64,
    k: usize,
) -> SegmentPoint {
    assert!(k >= 1, "at least one segment");
    let reqs = step_requirements(plan);
    let hops = step_hops(plan);
    let steps = reqs.len();
    if steps == 0 {
        return SegmentPoint {
            segments: k,
            time_s: 0.0,
            feasible: true,
        };
    }
    let concurrency = k.min(steps);
    // Per-residue partition: any `concurrency` consecutive steps occupy
    // distinct residues mod `concurrency`, so giving residue `r` its own
    // sub-budget keeps concurrent stages conflict-free. The remainder
    // `w mod c` is distributed one extra lane per low residue.
    let base = config.wavelengths / concurrency;
    let extra = config.wavelengths % concurrency;
    let timing = config.timing();
    let seg_bytes = bytes.div_ceil(k as u64);

    let mut tick = 0.0f64;
    for (i, (&req, &h)) in reqs.iter().zip(&hops).enumerate() {
        let budget = base + usize::from(i % concurrency < extra);
        if budget == 0 || req > budget {
            return SegmentPoint {
                segments: k,
                time_s: f64::INFINITY,
                feasible: false,
            };
        }
        let lanes = (budget / req.max(1)).max(1);
        tick = tick.max(timing.transfer_time(seg_bytes, lanes, h));
    }
    SegmentPoint {
        segments: k,
        time_s: (steps + k - 1) as f64 * tick,
        feasible: true,
    }
}

/// The full trade-off curve for `k ∈ 1..=max_k`.
#[must_use]
pub fn segment_sweep(
    plan: &WrhtPlan,
    config: &OpticalConfig,
    bytes: u64,
    max_k: usize,
) -> Vec<SegmentPoint> {
    (1..=max_k.max(1))
        .map(|k| segmented_time(plan, config, bytes, k))
        .collect()
}

/// Pick the segment count minimizing modelled time; ties go to smaller `k`.
///
/// When no `k` in the sweep is feasible (e.g. the config's wavelength
/// budget is smaller than the one the plan was built for), the `k = 1`
/// point is returned unchanged — infeasible, with infinite time — so
/// callers can branch on `feasible` instead of panicking.
#[must_use]
pub fn optimal_segments(
    plan: &WrhtPlan,
    config: &OpticalConfig,
    bytes: u64,
    max_k: usize,
) -> SegmentPoint {
    let sweep = segment_sweep(plan, config, bytes, max_k);
    let fallback = sweep[0];
    sweep
        .into_iter()
        .filter(|p| p.feasible)
        .min_by(|a, b| a.time_s.total_cmp(&b.time_s))
        .unwrap_or(fallback)
}

/// Compare against the unsegmented cost model: `k = 1` must reproduce the
/// stepped plan's per-step maximum structure (a looser, max-based bound of
/// [`crate::cost::predict_time_s`]).
#[must_use]
pub fn unsegmented_upper_bound(cost: &CostBreakdown) -> f64 {
    let worst = cost.per_step_s.iter().copied().fold(0.0f64, f64::max);
    worst * cost.per_step_s.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::predict_time_s;
    use crate::plan::build_plan;

    fn setup(n: usize, m: usize, w: usize) -> (WrhtPlan, OpticalConfig) {
        (build_plan(n, m, w).unwrap(), OpticalConfig::new(n, w))
    }

    #[test]
    fn one_segment_matches_the_stepped_bound() {
        let (plan, cfg) = setup(256, 8, 64);
        let bytes = 100 << 20;
        let k1 = segmented_time(&plan, &cfg, bytes, 1);
        assert!(k1.feasible);
        let cost = predict_time_s(&plan, &cfg, bytes);
        // k = 1 pays steps * max-step-time; the exact stepped sum is <= that.
        assert!(cost.total_s() <= k1.time_s + 1e-12);
        assert!((k1.time_s - unsegmented_upper_bound(&cost)).abs() < 1e-12);
    }

    #[test]
    fn pipelining_helps_for_large_messages() {
        let (plan, cfg) = setup(256, 8, 64);
        let bytes = 500 << 20;
        let base = segmented_time(&plan, &cfg, bytes, 1).time_s;
        let best = optimal_segments(&plan, &cfg, bytes, 8);
        assert!(best.feasible);
        assert!(
            best.time_s <= base,
            "pipelining must not hurt: {} vs {base}",
            best.time_s
        );
    }

    #[test]
    fn infeasible_when_sub_budget_too_small() {
        // m = 9 needs 4 wavelengths per tree step; with w = 8 and k >= 3
        // the sub-budget floor(8/3) = 2 < 4 is infeasible.
        let (plan, cfg) = setup(81, 9, 8);
        let p = segmented_time(&plan, &cfg, 1 << 20, 3);
        assert!(!p.feasible);
        assert!(p.time_s.is_infinite());
        // k = 1 is always feasible.
        assert!(segmented_time(&plan, &cfg, 1 << 20, 1).feasible);
    }

    #[test]
    fn optimal_is_argmin_of_the_sweep() {
        let (plan, cfg) = setup(128, 4, 64);
        let bytes = 64 << 20;
        let sweep = segment_sweep(&plan, &cfg, bytes, 16);
        let best = optimal_segments(&plan, &cfg, bytes, 16);
        for p in sweep.iter().filter(|p| p.feasible) {
            assert!(best.time_s <= p.time_s + 1e-15);
        }
        assert_eq!(sweep.len(), 16);
    }

    #[test]
    fn overhead_limits_segmentation() {
        // With a huge per-message overhead, many tiny segments lose.
        let plan = build_plan(64, 4, 16).unwrap();
        let cfg = OpticalConfig::new(64, 16).with_message_overhead(1e-3);
        let best = optimal_segments(&plan, &cfg, 1 << 20, 64);
        assert!(
            best.segments < 64,
            "alpha must cap k, got {}",
            best.segments
        );
    }

    #[test]
    fn zero_sub_budget_is_infeasible_even_for_degenerate_steps() {
        use crate::plan::{Group, Level};
        // Three degenerate levels requesting zero wavelengths. With w = 2
        // and k = 3 the per-residue budgets are [1, 1, 0]; the zero-budget
        // stage can make no progress, so the point must be infeasible —
        // never a bogus 0-wavelength "feasible" schedule.
        let level = Level {
            groups: vec![Group {
                members: vec![0],
                rep: 0,
            }],
            lambda_requirement: 0,
            lanes: 1,
        };
        let plan = WrhtPlan {
            n: 8,
            m: 2,
            wavelengths: 2,
            levels: vec![level.clone(), level.clone(), level],
            alltoall: None,
            final_reps: vec![0],
        };
        let cfg = OpticalConfig::new(8, 2);
        let p = segmented_time(&plan, &cfg, 1 << 20, 3);
        assert!(!p.feasible);
        assert!(p.time_s.is_infinite());
        // k = 1 gives every step the full budget and stays feasible.
        assert!(segmented_time(&plan, &cfg, 1 << 20, 1).feasible);
    }

    #[test]
    fn k_beyond_the_wavelength_budget_is_never_selected() {
        // w = 1: any k >= 2 leaves some stage with a zero budget, so the
        // sweep must fall back to k = 1 instead of a degenerate deep k.
        let (plan, cfg) = setup(64, 2, 1);
        for k in 2..=8 {
            assert!(
                !segmented_time(&plan, &cfg, 1 << 20, k).feasible,
                "k={k} cannot fit one wavelength"
            );
        }
        let best = optimal_segments(&plan, &cfg, 1 << 20, 8);
        assert!(best.feasible);
        assert_eq!(best.segments, 1);
    }

    #[test]
    fn zero_bytes_selects_a_single_segment() {
        // With nothing to move, every extra segment only adds pipeline
        // fill ticks (overhead + propagation); the argmin must be k = 1.
        let (plan, cfg) = setup(256, 8, 64);
        let best = optimal_segments(&plan, &cfg, 0, 16);
        assert!(best.feasible);
        assert_eq!(best.segments, 1);
        assert!(best.time_s.is_finite());
    }

    #[test]
    fn optimal_segments_falls_back_instead_of_panicking() {
        // A config with fewer wavelengths than the plan was built for can
        // make every k (including 1) infeasible; the solver must report
        // the k = 1 point as infeasible rather than panic.
        let (plan, _) = setup(81, 9, 8); // tree steps need 4 wavelengths
        let starved = OpticalConfig::new(81, 2);
        let best = optimal_segments(&plan, &starved, 1 << 20, 4);
        assert!(!best.feasible);
        assert_eq!(best.segments, 1);
        assert!(best.time_s.is_infinite());
    }

    #[test]
    fn more_wavelengths_never_hurt_any_segment_count() {
        // The remainder lanes must be distributed, not wasted: growing the
        // budget by one can only help (or leave unchanged) every k.
        let plan = build_plan(81, 3, 4).unwrap();
        for w in 4..12usize {
            let narrow = OpticalConfig::new(81, w);
            let wide = OpticalConfig::new(81, w + 1);
            for k in 1..=6 {
                let a = segmented_time(&plan, &narrow, 32 << 20, k);
                let b = segmented_time(&plan, &wide, 32 << 20, k);
                assert!(
                    b.time_s <= a.time_s + 1e-15,
                    "w={w} k={k}: {} vs {}",
                    b.time_s,
                    a.time_s
                );
            }
        }
    }

    #[test]
    fn wrapped_groups_do_not_underflow_hop_spans() {
        use crate::plan::{Group, Level};
        // Regression: a wrapped ring group whose representative is the
        // numerically smallest member used to underflow `rep - first`.
        let wrapped = Level {
            groups: vec![Group {
                members: vec![6, 7, 0],
                rep: 0,
            }],
            lambda_requirement: 1,
            lanes: 1,
        };
        let plan = WrhtPlan {
            n: 8,
            m: 3,
            wavelengths: 2,
            levels: vec![wrapped],
            alltoall: None,
            final_reps: vec![0],
        };
        let cfg = OpticalConfig::new(8, 2);
        let p = segmented_time(&plan, &cfg, 1 << 20, 2);
        assert!(p.feasible);
        assert!(p.time_s.is_finite());
        // The span is measured via |member - rep| = 7 hops for member 7.
        let cost = crate::cost::predict_time_s(&plan, &cfg, 1 << 20);
        assert!(cost.total_s().is_finite());
        assert_eq!(plan.levels[0].max_hop_span(), 7);
    }

    #[test]
    fn empty_plan_costs_nothing() {
        let plan = build_plan(1, 2, 4).unwrap();
        let cfg = OpticalConfig::new(2, 4);
        let p = segmented_time(&plan, &cfg, 1 << 20, 4);
        assert_eq!(p.time_s, 0.0);
        assert!(p.feasible);
    }
}
