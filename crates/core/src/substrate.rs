//! The unified execution substrate abstraction.
//!
//! Every experiment in this workspace ultimately times a step-synchronous
//! communication schedule on one of two simulated fabrics: the WDM optical
//! ring ([`optical_sim::RingSimulator`]) or the electrical switched cluster
//! ([`electrical_sim`]'s fluid model). Historically each caller hand-wired
//! one of the two incompatible runner APIs; the [`Substrate`] trait gives
//! them a single entry point.
//!
//! The workload IR is the optical [`StepSchedule`] — the richest of the two
//! step formats (it carries payload bytes, ring direction and wavelength
//! striping lanes). The electrical substrate simply ignores the optical-only
//! fields: its fluid model has no wavelengths, and routing is decided by the
//! [`electrical_sim::Network`] topology.
//!
//! Both flat fabrics also compose: [`crate::hierarchy::ComposedSubstrate`]
//! is a third [`Substrate`] implementation that co-simulates per-group
//! optical rings with an electrical inter-group cluster in one event loop,
//! and collapses bit-exactly to the flat substrates when `groups == 1`.
//!
//! ```
//! use wrht_core::substrate::{ElectricalSubstrate, OpticalSubstrate, Substrate};
//! use wrht_core::baselines::oring_schedule;
//! use optical_sim::OpticalConfig;
//!
//! let sched = oring_schedule(8, 8_000, 4);
//! let mut optical = OpticalSubstrate::new(OpticalConfig::new(8, 4)).unwrap();
//! let mut electrical = ElectricalSubstrate::new(
//!     electrical_sim::topology::star_cluster(8, 12.5e9, 500e-9),
//!     5e-6,
//! );
//! let o = optical.execute(&sched).unwrap();
//! let e = electrical.execute(&sched).unwrap();
//! assert_eq!(o.step_count(), e.step_count());
//! ```

use crate::dag::DepSchedule;
use crate::error::Result;
use crate::fault::{
    fault_cluster_report, FaultClusterReport, FaultPolicy, FaultRunReport, FaultScript, FaultTiming,
};
use crate::stream::{StreamCheckpoint, StreamOutcome, StreamReport, StreamSpec};
use crate::tenancy::{ClusterReport, JobArbitration, TenancySpec, TenantDagRun};
use electrical_sim::runner::{
    run_dag, run_dag_jobs, run_dag_jobs_faulted, run_steps, DagFlow, StepTransfer,
};
use electrical_sim::Network;
use optical_sim::sim::{DagTransfer, StepReport, StepSchedule};
use optical_sim::{OpticalConfig, RingSimulator, Strategy};
use serde::{Deserialize, Serialize};

/// Timing and accounting for one executed step, common to both substrates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepTiming {
    /// Wall-clock duration of the step, seconds.
    pub duration_s: f64,
    /// Number of transfers executed in the step.
    pub transfers: usize,
    /// Payload bytes moved in the step.
    pub bytes: u64,
    /// Highest wavelength index used + 1 (0 on substrates without WDM).
    pub peak_wavelength: usize,
}

/// Substrate-independent result of executing a [`StepSchedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Name of the substrate that produced the report.
    pub substrate: String,
    /// Total simulated communication time, seconds.
    pub total_time_s: f64,
    /// Per-step breakdown in execution order.
    pub steps: Vec<StepTiming>,
}

impl RunReport {
    /// Number of executed steps.
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Per-step durations in execution order, seconds.
    #[must_use]
    pub fn per_step_s(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.duration_s).collect()
    }

    /// Total payload bytes moved.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.bytes).sum()
    }

    /// Total transfers across all steps.
    #[must_use]
    pub fn transfer_count(&self) -> usize {
        self.steps.iter().map(|s| s.transfers).sum()
    }

    /// Largest wavelength footprint over all steps (0 without WDM).
    #[must_use]
    pub fn peak_wavelengths(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.peak_wavelength)
            .max()
            .unwrap_or(0)
    }

    /// Mean goodput over the run, bytes/s (0 for empty or zero-time runs).
    #[must_use]
    pub fn mean_goodput_bps(&self) -> f64 {
        if self.total_time_s > 0.0 {
            self.total_bytes() as f64 / self.total_time_s
        } else {
            0.0
        }
    }

    /// Utilization of a reference capacity: mean goodput divided by
    /// `peak_bps` (e.g. `w * B` for the optical ring). 0 for empty runs.
    #[must_use]
    pub fn utilization(&self, peak_bps: f64) -> f64 {
        if peak_bps > 0.0 {
            self.mean_goodput_bps() / peak_bps
        } else {
            0.0
        }
    }
}

/// Per-transfer timing of a dependency-aware run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DagTiming {
    /// Instant the transfer's gates opened (dependencies, release time
    /// and — optically — wavelengths satisfied), seconds.
    pub start_s: f64,
    /// Completion instant, seconds.
    pub finish_s: f64,
}

/// Substrate-independent result of executing a [`DepSchedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagRunReport {
    /// Name of the substrate that produced the report.
    pub substrate: String,
    /// Completion time of the last transfer, seconds.
    pub makespan_s: f64,
    /// Per-transfer windows in [`DepSchedule`] order.
    pub transfers: Vec<DagTiming>,
    /// Highest wavelength index in use at any instant + 1 (0 without WDM).
    pub peak_wavelength: usize,
    /// Fluid-solver invocations (0 on the optical substrate). With the
    /// incremental engine each invocation covers only the contention
    /// component whose active-flow set changed.
    pub rate_recomputations: usize,
    /// Progressive-filling work units (0 on the optical substrate) — the
    /// solve-complexity metric the incremental engine reduces.
    pub solver_work: usize,
    /// Discrete events processed by the shared event kernel
    /// ([`wrht_kernel::EventKernel`]) — grants/releases/completions on the
    /// optical ring, wake-ups and completions in the electrical fluid
    /// model. The denominator of the events/sec benchmark.
    pub events: u64,
}

/// A fabric that can execute step-synchronous communication schedules.
///
/// Implementations must be deterministic: executing the same schedule twice
/// yields bit-identical reports.
pub trait Substrate {
    /// Human-readable substrate name (used in reports and campaign rows).
    fn name(&self) -> &str;

    /// Number of attached compute nodes.
    fn nodes(&self) -> usize;

    /// Execute `schedule` and report per-step timing.
    fn execute(&mut self, schedule: &StepSchedule) -> Result<RunReport>;

    /// Execute a dependency-aware schedule event-driven: each transfer
    /// starts the instant its predecessors complete (and its release time
    /// has passed). On a barrier-shaped DAG
    /// ([`DepSchedule::is_barrier_shaped`]) the makespan equals the
    /// stepped [`Substrate::execute`] total bit-exactly on both
    /// substrates; on general DAGs consecutive steps and buckets overlap
    /// on the wire.
    fn execute_dag(&mut self, dag: &DepSchedule) -> Result<DagRunReport>;

    /// Execute a **multi-job** composed DAG (see
    /// [`crate::tenancy::TenancySpec::compose`]): transfers carry job tags
    /// and contended resources are arbitrated across jobs per `arb`. The
    /// optical grant loop orders waiters by job rank / accumulated service;
    /// the electrical fluid model keeps max-min rates (inherently
    /// fair-shared) but attributes the rate solution to jobs. With a single
    /// job this is bit-exact with [`Substrate::execute_dag`].
    fn execute_dag_jobs(&mut self, dag: &DepSchedule, arb: &JobArbitration)
        -> Result<TenantDagRun>;

    /// Execute a set of concurrent jobs sharing this substrate under the
    /// spec's scheduling policy, and price the outcome per tenant: the
    /// jobs' schedules are composed into one shared DAG run
    /// ([`Substrate::execute_dag_jobs`]), then every job is additionally
    /// run **alone** on the idle substrate to anchor its
    /// slowdown-vs-isolation, and the per-job makespans, exposed
    /// communication, bandwidth shares and the Jain fairness index are
    /// assembled into a [`ClusterReport`].
    fn execute_jobs(&mut self, spec: &TenancySpec) -> Result<ClusterReport> {
        let composed = spec.compose()?;
        let arb = spec.arbitration(&composed.job_of);
        let run = self.execute_dag_jobs(&composed.dag, &arb)?;
        let mut isolated = Vec::with_capacity(spec.jobs.len());
        for lowered in &composed.lowered {
            isolated.push(self.execute_dag(lowered)?.makespan_s);
        }
        Ok(crate::tenancy::cluster_report(
            spec, &composed, &run, &isolated,
        ))
    }

    /// Execute a dependency-aware schedule under a [`FaultScript`] with the
    /// given recovery [`FaultPolicy`]. Each substrate reacts only to the
    /// event kinds that exist on it (see [`crate::fault`]); with no
    /// relevant events the run delegates to [`Substrate::execute_dag`] and
    /// is **bit-exact** with it.
    fn execute_dag_faulted(
        &mut self,
        dag: &DepSchedule,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultRunReport>;

    /// The multi-job counterpart of [`Substrate::execute_dag_faulted`]:
    /// transfers carry job tags, contended resources are arbitrated across
    /// jobs per `arb`, and [`crate::fault::FaultPolicy::FailJob`] fails
    /// whole jobs rather than single transfers. With no relevant events the
    /// run delegates to [`Substrate::execute_dag_jobs`] bit-exactly.
    fn execute_dag_jobs_faulted(
        &mut self,
        dag: &DepSchedule,
        arb: &JobArbitration,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultRunReport>;

    /// Execute a set of concurrent jobs under a fault script and measure
    /// the blast radius: the composed DAG is run **clean**
    /// ([`Substrate::execute_dag_jobs`]) and **faulted**
    /// ([`Substrate::execute_dag_jobs_faulted`]), and the two runs are
    /// diffed into a [`FaultClusterReport`] — per-job transfers aborted /
    /// delayed / failed, recovery time and the degraded-vs-clean makespan
    /// ratio.
    fn execute_jobs_faulted(
        &mut self,
        spec: &TenancySpec,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultClusterReport> {
        let composed = spec.compose()?;
        let arb = spec.arbitration(&composed.job_of);
        let clean = self.execute_dag_jobs(&composed.dag, &arb)?;
        let faulted = self.execute_dag_jobs_faulted(&composed.dag, &arb, script, policy)?;
        Ok(fault_cluster_report(
            spec, &composed, &clean.dag, &faulted, policy,
        ))
    }

    /// Execute an **open-loop arrival stream** ([`crate::stream`]): jobs
    /// arrive over time per the spec's [`crate::stream::ArrivalProcess`],
    /// pass admission control, and their transfers are injected into the
    /// *running* engine — the same event-driven engine the closed
    /// [`Substrate::execute_jobs`] path drives, so a stream whose arrivals
    /// are all pre-known is bit-exact with the closed run. Metrics are
    /// aggregated per window with bounded memory.
    fn execute_stream(&mut self, spec: &StreamSpec) -> Result<StreamReport> {
        match self.execute_stream_until(spec, None)? {
            StreamOutcome::Done(report) => Ok(report),
            StreamOutcome::Paused(_) => Err(optical_sim::OpticalError::BadConfig(
                "stream paused without a pause request",
            )
            .into()),
        }
    }

    /// Like [`Substrate::execute_stream`], but optionally pause once
    /// `pause_after_arrivals` arrivals have been generated, returning a
    /// [`StreamCheckpoint`] that [`Substrate::resume_stream`] continues
    /// byte-identically.
    fn execute_stream_until(
        &mut self,
        spec: &StreamSpec,
        pause_after_arrivals: Option<u64>,
    ) -> Result<StreamOutcome>;

    /// Resume a paused stream from a [`StreamCheckpoint`] taken on an
    /// identically configured substrate with the identical spec. The
    /// resumed run's report is byte-identical to the uninterrupted run's.
    fn resume_stream(
        &mut self,
        spec: &StreamSpec,
        checkpoint: &StreamCheckpoint,
        pause_after_arrivals: Option<u64>,
    ) -> Result<StreamOutcome>;
}

/// The WDM optical ring as an execution substrate.
#[derive(Debug, Clone)]
pub struct OpticalSubstrate {
    sim: RingSimulator,
    strategy: Strategy,
}

impl OpticalSubstrate {
    /// Build from an optical configuration with First-Fit RWA.
    pub fn new(config: OpticalConfig) -> Result<Self> {
        Self::with_strategy(config, Strategy::FirstFit)
    }

    /// Build with an explicit RWA strategy.
    pub fn with_strategy(config: OpticalConfig, strategy: Strategy) -> Result<Self> {
        Ok(Self {
            sim: RingSimulator::try_new(config)?,
            strategy,
        })
    }

    /// The underlying optical configuration.
    #[must_use]
    pub fn config(&self) -> &OpticalConfig {
        self.sim.config()
    }

    /// The RWA strategy applied per step.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    fn run_faulted(
        &mut self,
        dag: &DepSchedule,
        arb: Option<&JobArbitration>,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultRunReport> {
        let transfers: Vec<DagTransfer> = dag
            .transfers()
            .iter()
            .map(|t| DagTransfer {
                transfer: t.transfer.clone(),
                release_s: t.release_s,
                deps: t.deps.clone(),
            })
            .collect();
        let report = self
            .sim
            .run_dag_faulted(&transfers, self.strategy, arb, script, policy)?;
        Ok(FaultRunReport {
            substrate: "optical".into(),
            makespan_s: report.makespan_s,
            transfers: report
                .outcomes
                .iter()
                .map(|o| FaultTiming {
                    start_s: o.start_s,
                    finish_s: o.finish_s,
                    aborts: o.aborts,
                    completed: o.completed,
                })
                .collect(),
            peak_wavelength: report.peak_wavelength,
            events: report.events,
            first_impact_s: report.first_impact_s,
        })
    }

    /// Convert a stepped optical report into the common shape.
    #[must_use]
    pub fn report_from_stepped(report: &StepReport) -> RunReport {
        RunReport {
            substrate: "optical".into(),
            total_time_s: report.total_time_s,
            steps: report
                .stats
                .steps
                .iter()
                .map(|s| StepTiming {
                    duration_s: s.duration_s,
                    transfers: s.transfers,
                    bytes: s.bytes,
                    peak_wavelength: s.peak_wavelength,
                })
                .collect(),
        }
    }
}

impl Substrate for OpticalSubstrate {
    fn name(&self) -> &str {
        "optical"
    }

    fn nodes(&self) -> usize {
        self.config().nodes
    }

    fn execute(&mut self, schedule: &StepSchedule) -> Result<RunReport> {
        let report = self.sim.run_stepped(schedule, self.strategy)?;
        Ok(Self::report_from_stepped(&report))
    }

    fn execute_dag(&mut self, dag: &DepSchedule) -> Result<DagRunReport> {
        let transfers: Vec<DagTransfer> = dag
            .transfers()
            .iter()
            .map(|t| DagTransfer {
                transfer: t.transfer.clone(),
                release_s: t.release_s,
                deps: t.deps.clone(),
            })
            .collect();
        let report = self.sim.run_dag(&transfers, self.strategy)?;
        Ok(DagRunReport {
            substrate: "optical".into(),
            makespan_s: report.makespan_s,
            transfers: report
                .transfer_times
                .iter()
                .map(|&(start_s, finish_s)| DagTiming { start_s, finish_s })
                .collect(),
            peak_wavelength: report.peak_wavelength,
            rate_recomputations: 0,
            solver_work: 0,
            events: report.events,
        })
    }

    fn execute_dag_jobs(
        &mut self,
        dag: &DepSchedule,
        arb: &JobArbitration,
    ) -> Result<TenantDagRun> {
        let transfers: Vec<DagTransfer> = dag
            .transfers()
            .iter()
            .map(|t| DagTransfer {
                transfer: t.transfer.clone(),
                release_s: t.release_s,
                deps: t.deps.clone(),
            })
            .collect();
        let report = self.sim.run_dag_jobs(&transfers, arb, self.strategy)?;
        let jobs = arb.rank.len();
        Ok(TenantDagRun {
            dag: DagRunReport {
                substrate: "optical".into(),
                makespan_s: report.makespan_s,
                transfers: report
                    .transfer_times
                    .iter()
                    .map(|&(start_s, finish_s)| DagTiming { start_s, finish_s })
                    .collect(),
                peak_wavelength: report.peak_wavelength,
                rate_recomputations: 0,
                solver_work: 0,
                events: report.events,
            },
            // Wavelengths are granted whole — there is no fractional rate
            // solution to attribute on the optical ring; delivered bytes
            // are the exact payload sums (as on the electrical fast path).
            job_active_s: vec![0.0; jobs],
            job_service_bytes: {
                let mut service = vec![0.0f64; jobs];
                for (t, &j) in dag.transfers().iter().zip(&arb.job_of) {
                    service[j] += t.transfer.bytes as f64;
                }
                service
            },
            job_peak_rate_bps: vec![0.0; jobs],
        })
    }

    fn execute_dag_faulted(
        &mut self,
        dag: &DepSchedule,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultRunReport> {
        self.run_faulted(dag, None, script, policy)
    }

    fn execute_dag_jobs_faulted(
        &mut self,
        dag: &DepSchedule,
        arb: &JobArbitration,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultRunReport> {
        self.run_faulted(dag, Some(arb), script, policy)
    }

    fn execute_stream_until(
        &mut self,
        spec: &StreamSpec,
        pause_after_arrivals: Option<u64>,
    ) -> Result<StreamOutcome> {
        crate::stream::optical_stream(self, spec, None, pause_after_arrivals)
    }

    fn resume_stream(
        &mut self,
        spec: &StreamSpec,
        checkpoint: &StreamCheckpoint,
        pause_after_arrivals: Option<u64>,
    ) -> Result<StreamOutcome> {
        crate::stream::optical_stream(self, spec, Some(checkpoint), pause_after_arrivals)
    }
}

/// The electrical switched cluster (fluid model) as an execution substrate.
///
/// Direction and lane fields of the optical IR are ignored. Zero-byte
/// transfers are passed through and counted — the runner skips them when
/// solving the fluid model but still charges the per-step launch overhead —
/// so `transfers`/`bytes` accounting matches the optical substrate for the
/// same schedule.
#[derive(Debug, Clone)]
pub struct ElectricalSubstrate {
    net: Network,
    step_overhead_s: f64,
}

impl ElectricalSubstrate {
    /// Build from a network and the per-step protocol overhead.
    #[must_use]
    pub fn new(net: Network, step_overhead_s: f64) -> Self {
        Self {
            net,
            step_overhead_s,
        }
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The per-step protocol overhead charged to every transfer, seconds.
    #[must_use]
    pub fn step_overhead_s(&self) -> f64 {
        self.step_overhead_s
    }

    fn run_faulted(
        &mut self,
        dag: &DepSchedule,
        job_of: &[usize],
        jobs: usize,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultRunReport> {
        let flows: Vec<DagFlow> = dag
            .transfers()
            .iter()
            .map(|t| DagFlow {
                src: t.transfer.src.0,
                dst: t.transfer.dst.0,
                bytes: t.transfer.bytes,
                release_s: t.release_s,
                deps: t.deps.clone(),
                stage: t.stage,
            })
            .collect();
        let report = run_dag_jobs_faulted(
            &self.net,
            &flows,
            job_of,
            jobs,
            self.step_overhead_s,
            script,
            policy,
        )?;
        Ok(FaultRunReport {
            substrate: "electrical".into(),
            makespan_s: report.tenant.report.makespan_s,
            transfers: report
                .tenant
                .report
                .windows
                .iter()
                .zip(report.failed.iter().zip(&report.aborted))
                .map(|(&(start_s, finish_s), (&failed, &aborts))| FaultTiming {
                    start_s,
                    finish_s,
                    aborts,
                    completed: !failed,
                })
                .collect(),
            peak_wavelength: 0,
            events: report.tenant.report.events,
            first_impact_s: report.first_impact_s,
        })
    }
}

impl Substrate for ElectricalSubstrate {
    fn name(&self) -> &str {
        "electrical"
    }

    fn nodes(&self) -> usize {
        self.net.hosts()
    }

    fn execute(&mut self, schedule: &StepSchedule) -> Result<RunReport> {
        let steps: Vec<Vec<StepTransfer>> = schedule
            .steps()
            .iter()
            .map(|step| {
                step.iter()
                    .map(|t| StepTransfer {
                        src: t.src.0,
                        dst: t.dst.0,
                        bytes: t.bytes,
                    })
                    .collect()
            })
            .collect();
        let report = run_steps(&self.net, &steps, self.step_overhead_s)?;
        Ok(RunReport {
            substrate: "electrical".into(),
            total_time_s: report.total_time_s,
            steps: report
                .step_times_s
                .iter()
                .zip(&steps)
                .map(|(&duration_s, step)| StepTiming {
                    duration_s,
                    transfers: step.len(),
                    bytes: step.iter().map(|t| t.bytes).sum(),
                    peak_wavelength: 0,
                })
                .collect(),
        })
    }

    fn execute_dag(&mut self, dag: &DepSchedule) -> Result<DagRunReport> {
        let flows: Vec<DagFlow> = dag
            .transfers()
            .iter()
            .map(|t| DagFlow {
                src: t.transfer.src.0,
                dst: t.transfer.dst.0,
                bytes: t.transfer.bytes,
                release_s: t.release_s,
                deps: t.deps.clone(),
                stage: t.stage,
            })
            .collect();
        let report = run_dag(&self.net, &flows, self.step_overhead_s)?;
        Ok(DagRunReport {
            substrate: "electrical".into(),
            makespan_s: report.makespan_s,
            transfers: report
                .windows
                .iter()
                .map(|&(start_s, finish_s)| DagTiming { start_s, finish_s })
                .collect(),
            peak_wavelength: 0,
            rate_recomputations: report.rate_recomputations,
            solver_work: report.solver_work,
            events: report.events,
        })
    }

    fn execute_dag_jobs(
        &mut self,
        dag: &DepSchedule,
        arb: &JobArbitration,
    ) -> Result<TenantDagRun> {
        let flows: Vec<DagFlow> = dag
            .transfers()
            .iter()
            .map(|t| DagFlow {
                src: t.transfer.src.0,
                dst: t.transfer.dst.0,
                bytes: t.transfer.bytes,
                release_s: t.release_s,
                deps: t.deps.clone(),
                stage: t.stage,
            })
            .collect();
        // The max-min fluid model is inherently fair-shared: ranks do not
        // change electrical rates, but the solver attributes its solution
        // to the job tags so tenants' bandwidth can be priced.
        let tenant = run_dag_jobs(
            &self.net,
            &flows,
            &arb.job_of,
            arb.rank.len(),
            self.step_overhead_s,
        )?;
        Ok(TenantDagRun {
            dag: DagRunReport {
                substrate: "electrical".into(),
                makespan_s: tenant.report.makespan_s,
                transfers: tenant
                    .report
                    .windows
                    .iter()
                    .map(|&(start_s, finish_s)| DagTiming { start_s, finish_s })
                    .collect(),
                peak_wavelength: 0,
                rate_recomputations: tenant.report.rate_recomputations,
                solver_work: tenant.report.solver_work,
                events: tenant.report.events,
            },
            job_active_s: tenant.job_active_s,
            job_service_bytes: tenant.job_service_bytes,
            job_peak_rate_bps: tenant.job_peak_rate_bps,
        })
    }

    fn execute_dag_faulted(
        &mut self,
        dag: &DepSchedule,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultRunReport> {
        let job_of = vec![0usize; dag.len()];
        self.run_faulted(dag, &job_of, 1, script, policy)
    }

    fn execute_dag_jobs_faulted(
        &mut self,
        dag: &DepSchedule,
        arb: &JobArbitration,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultRunReport> {
        self.run_faulted(dag, &arb.job_of, arb.rank.len(), script, policy)
    }

    fn execute_stream_until(
        &mut self,
        spec: &StreamSpec,
        pause_after_arrivals: Option<u64>,
    ) -> Result<StreamOutcome> {
        crate::stream::electrical_stream(self, spec, None, pause_after_arrivals)
    }

    fn resume_stream(
        &mut self,
        spec: &StreamSpec,
        checkpoint: &StreamCheckpoint,
        pause_after_arrivals: Option<u64>,
    ) -> Result<StreamOutcome> {
        crate::stream::electrical_stream(self, spec, Some(checkpoint), pause_after_arrivals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::oring_schedule;
    use optical_sim::{NodeId, Transfer};

    fn optical(n: usize, w: usize) -> OpticalSubstrate {
        OpticalSubstrate::new(
            OpticalConfig::new(n, w)
                .with_lambda_bandwidth(1e9)
                .with_message_overhead(0.0)
                .with_hop_propagation(0.0),
        )
        .unwrap()
    }

    fn electrical(n: usize) -> ElectricalSubstrate {
        ElectricalSubstrate::new(electrical_sim::topology::star_cluster(n, 1e9, 0.0), 0.0)
    }

    #[test]
    fn empty_schedule_is_zero_on_both_substrates() {
        let sched = StepSchedule::default();
        for report in [
            optical(8, 4).execute(&sched).unwrap(),
            electrical(8).execute(&sched).unwrap(),
        ] {
            assert_eq!(report.total_time_s, 0.0);
            assert_eq!(report.step_count(), 0);
            assert_eq!(report.total_bytes(), 0);
            assert_eq!(report.mean_goodput_bps(), 0.0);
            assert_eq!(report.peak_wavelengths(), 0);
        }
    }

    #[test]
    fn empty_step_inside_a_schedule_costs_nothing_on_both() {
        let sched = StepSchedule::from_steps(vec![
            vec![Transfer::shortest(NodeId(0), NodeId(1), 1_000_000)],
            vec![],
            vec![Transfer::shortest(NodeId(2), NodeId(3), 1_000_000)],
        ]);
        for report in [
            optical(8, 4).execute(&sched).unwrap(),
            electrical(8).execute(&sched).unwrap(),
        ] {
            assert_eq!(report.step_count(), 3);
            assert_eq!(report.steps[1].duration_s, 0.0);
            assert_eq!(report.steps[1].transfers, 0);
            assert!((report.total_time_s - 2e-3).abs() < 1e-12);
        }
    }

    #[test]
    fn one_step_schedule_matches_closed_form_on_both() {
        let sched = StepSchedule::from_steps(vec![vec![Transfer::shortest(
            NodeId(0),
            NodeId(1),
            2_000_000,
        )]]);
        let o = optical(8, 4).execute(&sched).unwrap();
        let e = electrical(8).execute(&sched).unwrap();
        assert!((o.total_time_s - 2e-3).abs() < 1e-12);
        assert!((e.total_time_s - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn substrates_agree_on_a_ring_allreduce_with_matched_physics() {
        let n = 8;
        let sched = oring_schedule(n, 8_000, 4);
        let o = optical(n, 1).execute(&sched).unwrap();
        let mut ring = ElectricalSubstrate::new(electrical_sim::topology::ring(n, 1e9, 0.0), 0.0);
        let e = ring.execute(&sched).unwrap();
        assert_eq!(o.step_count(), e.step_count());
        for (os, es) in o.steps.iter().zip(&e.steps) {
            assert!(
                (os.duration_s - es.duration_s).abs() < 1e-15,
                "optical {} vs electrical {}",
                os.duration_s,
                es.duration_s
            );
            assert_eq!(os.bytes, es.bytes);
        }
    }

    #[test]
    fn optical_report_carries_wavelength_footprint() {
        let n = 8;
        let sched = oring_schedule(n, 8_000, 4);
        let report = optical(n, 4).execute(&sched).unwrap();
        assert_eq!(report.peak_wavelengths(), 1);
        assert_eq!(report.substrate, "optical");
        assert_eq!(report.transfer_count(), 2 * (n - 1) * n);
    }

    #[test]
    fn utilization_is_goodput_over_reference() {
        let sched = StepSchedule::from_steps(vec![vec![Transfer::shortest(
            NodeId(0),
            NodeId(1),
            1_000_000,
        )]]);
        let report = optical(8, 4).execute(&sched).unwrap();
        let util = report.utilization(4.0 * 1e9);
        assert!((util - 0.25).abs() < 1e-12, "util={util}");
        assert_eq!(report.utilization(0.0), 0.0);
    }

    #[test]
    fn barrier_dag_matches_execute_bit_exactly_on_both_substrates() {
        let n = 8;
        let sched = oring_schedule(n, 8_000, 4);
        let dag = crate::dag::DepSchedule::from_steps(&sched);
        assert!(dag.is_barrier_shaped());

        let mut o = optical(n, 4);
        let stepped = o.execute(&sched).unwrap();
        let event = o.execute_dag(&dag).unwrap();
        assert_eq!(event.makespan_s.to_bits(), stepped.total_time_s.to_bits());

        let mut e = electrical(n);
        let stepped = e.execute(&sched).unwrap();
        let event = e.execute_dag(&dag).unwrap();
        assert_eq!(event.makespan_s.to_bits(), stepped.total_time_s.to_bits());
        assert_eq!(event.transfers.len(), sched.transfer_count());
    }

    #[test]
    fn pipelined_dag_is_never_slower_than_barrier() {
        let n = 8;
        let sched = oring_schedule(n, 8_000, 4);
        let pipelined = crate::dag::DepSchedule::pipelined_from_steps(&sched);
        assert!(!pipelined.is_barrier_shaped());
        for (barrier_s, report) in [
            {
                let mut o = optical(n, 4);
                (
                    o.execute(&sched).unwrap().total_time_s,
                    o.execute_dag(&pipelined).unwrap(),
                )
            },
            {
                let mut e = electrical(n);
                (
                    e.execute(&sched).unwrap().total_time_s,
                    e.execute_dag(&pipelined).unwrap(),
                )
            },
        ] {
            assert!(
                report.makespan_s <= barrier_s + 1e-12,
                "{}: pipelined {} vs barrier {barrier_s}",
                report.substrate,
                report.makespan_s
            );
            assert!(report.makespan_s > 0.0);
        }
    }

    #[test]
    fn electrical_dag_reports_incremental_solver_metrics() {
        let sched = StepSchedule::from_steps(vec![
            vec![
                Transfer::shortest(NodeId(0), NodeId(1), 1_000_000),
                Transfer::shortest(NodeId(2), NodeId(3), 2_000_000),
            ],
            vec![Transfer::shortest(NodeId(1), NodeId(2), 1_000_000)],
        ]);
        let mut e = electrical(8);
        let report = e
            .execute_dag(&crate::dag::DepSchedule::pipelined_from_steps(&sched))
            .unwrap();
        assert!(report.rate_recomputations > 0);
        assert!(report.solver_work > 0);
        assert_eq!(report.peak_wavelength, 0);
        // Optical reports carry no fluid-solver metrics.
        let mut o = optical(8, 4);
        let report = o
            .execute_dag(&crate::dag::DepSchedule::from_steps(&sched))
            .unwrap();
        assert_eq!(report.solver_work, 0);
        assert!(report.peak_wavelength >= 1);
    }

    #[test]
    fn zero_byte_transfers_are_counted_on_both_substrates() {
        let sched = StepSchedule::from_steps(vec![vec![
            Transfer::shortest(NodeId(0), NodeId(1), 0),
            Transfer::shortest(NodeId(2), NodeId(3), 1_000_000),
        ]]);
        // Both substrates report the schedule's own transfer/byte counts;
        // the zero-byte transfer adds no serialization time on either
        // (these configs have zero overheads).
        for report in [
            optical(8, 4).execute(&sched).unwrap(),
            electrical(8).execute(&sched).unwrap(),
        ] {
            assert_eq!(report.steps[0].transfers, 2, "{}", report.substrate);
            assert_eq!(report.total_bytes(), 1_000_000);
            assert!((report.total_time_s - 1e-3).abs() < 1e-12);
        }
    }
}
