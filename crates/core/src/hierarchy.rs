//! Hierarchical composed substrates: intra-group and inter-group fabrics
//! executing one DAG together.
//!
//! The flat [`crate::substrate::Substrate`] implementations answer "how
//! long does this schedule take on *one* fabric". A production-scale
//! deployment is hierarchical: each group of hosts shares a fast
//! intra-group fabric (the paper's WDM optical ring), and the groups are
//! stitched together by a slower inter-group fabric (an electrical
//! switched cluster). A mixed-parallelism job produces traffic on *both*
//! at once — tensor-parallel all-reduces inside a group concurrently with
//! data-parallel gradient all-reduces across groups — and the two parts
//! are coupled by dependencies, so the fabrics cannot be simulated one
//! after the other.
//!
//! This module composes them:
//!
//! * [`HierSpec`] — the shape of the hierarchy: `groups` groups of
//!   `group_size` hosts. Global host `h` lives in group `h / group_size`.
//! * [`Domain`] — the fabric a transfer traverses, **derived from its
//!   endpoints**: same group → [`Domain::Intra`], different groups →
//!   [`Domain::Inter`]. [`HierSpec::domains`] tags a whole
//!   [`DepSchedule`]; there is no per-transfer freedom, so a tagged DAG
//!   can never disagree with the topology.
//! * [`FabricSpec`] — a buildable description of one fabric (the optical
//!   ring config + RWA strategy, or the electrical network + per-flow
//!   launch overhead). The intra spec describes **one group's** fabric and
//!   is replicated per group; the inter spec spans all
//!   `groups * group_size` hosts.
//! * [`ComposedSubstrate`] — a [`Substrate`] over the composed topology.
//!   [`Substrate::execute_dag`] partitions the DAG by domain and drives
//!   one streaming engine per fabric — [`optical_sim::GrantEngine`] for
//!   optical fabrics, [`electrical_sim::FluidEngine`] for electrical ones,
//!   both running on the shared [`wrht_kernel::EventKernel`] semantics —
//!   in a single event loop: at every iteration the engine with the
//!   earliest pending event steps, its completions retire dependency
//!   edges, and transfers whose last predecessor just finished are
//!   injected into *their* fabric's engine released at the bit-exact
//!   completion instant. Cross-fabric dependencies are therefore honored
//!   at kernel event granularity, not at phase barriers.
//!
//! # Flat collapse
//!
//! A [`HierSpec`] with `groups == 1` has no inter-group traffic at all —
//! every transfer's endpoints share the single group. Every execution
//! method then delegates verbatim to the flat intra substrate, so a
//! single-group composed run is **bit-exact** with today's flat runs (the
//! report carries the flat substrate's own label). This collapse is
//! pinned by `tests/hierarchy_differential.rs` on both fabric orders.
//!
//! # Determinism
//!
//! The event loop is deterministic: engines are ordered (group 0 .. group
//! G-1, then inter), the next engine to step is the minimum of the
//! engines' next-event instants under IEEE-754 total order with ties
//! broken by engine index, completions drain in engine order, and newly
//! unblocked transfers are injected in ascending DAG index. Same DAG →
//! bit-identical report.
//!
//! ```
//! use optical_sim::{NodeId, OpticalConfig, Transfer};
//! use wrht_core::dag::{DepSchedule, DepTransfer};
//! use wrht_core::hierarchy::{ComposedSubstrate, FabricSpec, HierSpec};
//! use wrht_core::substrate::Substrate;
//!
//! // Two groups of 4: an intra transfer in group 0, then a dependent
//! // inter transfer from group 0 to group 1.
//! let spec = HierSpec::new(2, 4).unwrap();
//! let mut sub = ComposedSubstrate::new(
//!     spec,
//!     FabricSpec::optical(OpticalConfig::new(4, 4)),
//!     FabricSpec::electrical(
//!         electrical_sim::topology::star_cluster(8, 12.5e9, 500e-9),
//!         5e-6,
//!     ),
//! )
//! .unwrap();
//! let dag = DepSchedule::from_transfers(vec![
//!     DepTransfer {
//!         transfer: Transfer::shortest(NodeId(0), NodeId(1), 1 << 20),
//!         deps: vec![],
//!         release_s: 0.0,
//!         stage: 0,
//!     },
//!     DepTransfer {
//!         transfer: Transfer::shortest(NodeId(1), NodeId(5), 1 << 20),
//!         deps: vec![0],
//!         release_s: 0.0,
//!         stage: 1,
//!     },
//! ])
//! .unwrap();
//! let report = sub.execute_dag(&dag).unwrap();
//! assert_eq!(report.transfers.len(), 2);
//! // The inter hop cannot start before the intra hop completed.
//! assert!(report.transfers[1].start_s >= report.transfers[0].finish_s);
//! ```

use electrical_sim::{EngineFlow, FluidEngine, Network};
use optical_sim::sim::StepSchedule;
use optical_sim::{
    GrantCompletion, GrantEngine, GrantTransfer, NodeId, OpticalConfig, OpticalError, Strategy,
    Transfer,
};
use serde::{Deserialize, Serialize};

use crate::dag::DepSchedule;
use crate::error::Result;
use crate::fault::{FaultPolicy, FaultRunReport, FaultScript};
use crate::stream::{StreamCheckpoint, StreamOutcome, StreamSpec};
use crate::substrate::{
    DagRunReport, DagTiming, ElectricalSubstrate, OpticalSubstrate, RunReport, StepTiming,
    Substrate,
};
use crate::tenancy::{JobArbitration, TenantDagRun};

fn cfg_err(msg: &'static str) -> crate::error::WrhtError {
    OpticalError::BadConfig(msg).into()
}

/// The fabric a transfer of a hierarchical job traverses.
///
/// Derived from the transfer's endpoints by [`HierSpec::domain_of`]; a
/// transfer whose endpoints share a group *is* intra-group traffic, so the
/// tag carries no degrees of freedom beyond the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// Both endpoints inside the same group: the transfer runs on that
    /// group's intra fabric, addressed by group-local host ids.
    Intra {
        /// The group both endpoints belong to.
        group: usize,
    },
    /// Endpoints in different groups: the transfer runs on the shared
    /// inter-group fabric, addressed by global host ids.
    Inter,
}

impl Domain {
    /// Stable lowercase label used in reports and CSV rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Domain::Intra { .. } => "intra",
            Domain::Inter => "inter",
        }
    }
}

/// The shape of a hierarchical deployment: `groups` groups of
/// `group_size` hosts each, `groups * group_size` hosts total.
///
/// Global host `h` lives in group `h / group_size` with group-local id
/// `h % group_size` — the same contiguous-partition convention the Wrht
/// planner's [`crate::plan::Group`] machinery uses on the flat ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierSpec {
    /// Number of groups (>= 1).
    pub groups: usize,
    /// Hosts per group (>= 2; a 1-host group could never source a legal
    /// intra transfer and the optical ring needs at least two nodes).
    pub group_size: usize,
}

impl HierSpec {
    /// Validated constructor.
    ///
    /// # Errors
    /// Rejects zero groups and groups smaller than two hosts.
    pub fn new(groups: usize, group_size: usize) -> Result<Self> {
        if groups == 0 {
            return Err(cfg_err("hierarchy needs at least one group"));
        }
        if group_size < 2 {
            return Err(cfg_err("hierarchy groups need at least two hosts"));
        }
        Ok(Self { groups, group_size })
    }

    /// Total hosts across all groups.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.groups * self.group_size
    }

    /// Group of a global host id.
    #[must_use]
    pub fn group_of(&self, node: usize) -> usize {
        node / self.group_size
    }

    /// Group-local id of a global host id.
    #[must_use]
    pub fn local(&self, node: usize) -> usize {
        node % self.group_size
    }

    /// The fabric domain of a transfer between two global host ids.
    #[must_use]
    pub fn domain_of(&self, src: usize, dst: usize) -> Domain {
        let g = self.group_of(src);
        if g == self.group_of(dst) {
            Domain::Intra { group: g }
        } else {
            Domain::Inter
        }
    }

    /// Tag every transfer of `dag` with its fabric domain.
    ///
    /// # Errors
    /// Rejects transfers whose endpoints exceed [`HierSpec::nodes`].
    pub fn domains(&self, dag: &DepSchedule) -> Result<Vec<Domain>> {
        let nodes = self.nodes();
        dag.transfers()
            .iter()
            .map(|t| {
                let (src, dst) = (t.transfer.src.0, t.transfer.dst.0);
                if src >= nodes || dst >= nodes {
                    return Err(cfg_err("transfer endpoint outside the hierarchy"));
                }
                Ok(self.domain_of(src, dst))
            })
            .collect()
    }
}

/// A buildable description of one fabric of a [`ComposedSubstrate`].
///
/// The intra spec describes a **single group's** fabric (its node count
/// must equal [`HierSpec::group_size`]) and is instantiated once per
/// group; the inter spec spans every host ([`HierSpec::nodes`]).
#[derive(Debug, Clone)]
pub enum FabricSpec {
    /// A WDM optical ring driven by the wavelength-grant loop.
    Optical {
        /// Ring deployment (nodes, wavelengths, timing).
        config: OpticalConfig,
        /// RWA strategy applied at every grant.
        strategy: Strategy,
    },
    /// An electrical switched cluster driven by the incremental max-min
    /// fluid engine.
    Electrical {
        /// Topology with link capacities and routing.
        network: Network,
        /// Launch overhead charged once per flow, seconds.
        step_overhead_s: f64,
    },
}

impl FabricSpec {
    /// Optical fabric with First-Fit RWA.
    #[must_use]
    pub fn optical(config: OpticalConfig) -> Self {
        FabricSpec::Optical {
            config,
            strategy: Strategy::FirstFit,
        }
    }

    /// Optical fabric with an explicit RWA strategy.
    #[must_use]
    pub fn optical_with(config: OpticalConfig, strategy: Strategy) -> Self {
        FabricSpec::Optical { config, strategy }
    }

    /// Electrical fabric.
    #[must_use]
    pub fn electrical(network: Network, step_overhead_s: f64) -> Self {
        FabricSpec::Electrical {
            network,
            step_overhead_s,
        }
    }

    /// Number of hosts the fabric attaches.
    #[must_use]
    pub fn nodes(&self) -> usize {
        match self {
            FabricSpec::Optical { config, .. } => config.nodes,
            FabricSpec::Electrical { network, .. } => network.hosts(),
        }
    }

    /// Stable lowercase label ("optical" / "electrical").
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FabricSpec::Optical { .. } => "optical",
            FabricSpec::Electrical { .. } => "electrical",
        }
    }

    /// Build the flat substrate this spec describes.
    ///
    /// # Errors
    /// Invalid optical configurations are rejected as by
    /// [`OpticalSubstrate::with_strategy`].
    pub fn substrate(&self) -> Result<Box<dyn Substrate>> {
        Ok(match self {
            FabricSpec::Optical { config, strategy } => {
                Box::new(OpticalSubstrate::with_strategy(config.clone(), *strategy)?)
            }
            FabricSpec::Electrical {
                network,
                step_overhead_s,
            } => Box::new(ElectricalSubstrate::new(network.clone(), *step_overhead_s)),
        })
    }
}

// ---------------------------------------------------------------------------
// Per-fabric streaming engines
// ---------------------------------------------------------------------------

/// One transfer completion surfaced to the composed event loop, already
/// resolved to its global DAG index.
struct Done {
    idx: usize,
    start_s: f64,
    finish_s: f64,
}

/// A fabric's streaming engine plus the bookkeeping that maps engine
/// completions back to global DAG indices and global host ids down to the
/// fabric's own address space.
enum Fabric<'a> {
    Optical {
        eng: Box<GrantEngine>,
        /// Global DAG index per engine order key (order keys are assigned
        /// in injection order, one per transfer).
        order_map: Vec<usize>,
        /// Global id of the fabric's host 0 (group * group_size; 0 for
        /// the inter fabric).
        node_base: usize,
        scratch: Vec<GrantCompletion>,
        wavelengths: usize,
        /// Instant of the engine's last processed event. Cross-fabric
        /// gates can lie (slightly) in this engine's past — the fluid
        /// engines surface completions through tolerated stale events, so
        /// a finish instant may only become known after other engines
        /// advanced beyond it. Injections clamp their release to this
        /// clock: the transfer still starts no earlier than its gate.
        clock_s: f64,
    },
    Electrical {
        eng: Box<FluidEngine<'a>>,
        /// Global DAG index per engine flow index (append-only).
        flow_map: Vec<usize>,
        node_base: usize,
        overhead_s: f64,
        /// Earliest release among flows injected since the last step; the
        /// fluid engine schedules release events lazily inside `step`, so
        /// the loop carries this to keep `peek` truthful (exactly as the
        /// stream driver does).
        pending_release: Option<f64>,
        scratch: Vec<usize>,
        /// Instant of the engine's last processed event (see the optical
        /// variant's `clock_s`); kept for symmetry so late cross-fabric
        /// gates never regress this engine's timeline either.
        clock_s: f64,
    },
}

impl<'a> Fabric<'a> {
    fn build(spec: &'a FabricSpec, node_base: usize, arb: Option<&JobArbitration>) -> Result<Self> {
        Ok(match spec {
            FabricSpec::Optical { config, strategy } => {
                let mut eng = GrantEngine::new(
                    config,
                    *strategy,
                    arb.is_some(),
                    arb.is_some_and(|a| a.fair_share),
                )?;
                if let Some(a) = arb {
                    for &r in &a.rank {
                        eng.add_job(r);
                    }
                }
                Fabric::Optical {
                    eng: Box::new(eng),
                    order_map: Vec::new(),
                    node_base,
                    scratch: Vec::new(),
                    wavelengths: config.wavelengths,
                    clock_s: 0.0,
                }
            }
            FabricSpec::Electrical {
                network,
                step_overhead_s,
            } => Fabric::Electrical {
                eng: Box::new(FluidEngine::new(network)),
                flow_map: Vec::new(),
                node_base,
                overhead_s: *step_overhead_s,
                pending_release: None,
                scratch: Vec::new(),
                clock_s: 0.0,
            },
        })
    }

    /// Instant of the fabric's next pending event, if any.
    fn peek(&mut self) -> Option<f64> {
        match self {
            Fabric::Optical { eng, .. } => eng.peek_time(),
            Fabric::Electrical {
                eng,
                pending_release,
                ..
            } => match (eng.peek_time(), *pending_release) {
                (Some(p), Some(r)) => Some(p.min(r)),
                (Some(p), None) => Some(p),
                (None, pending) => pending,
            },
        }
    }

    /// Inject one dependency-free transfer, released at `release_s`
    /// (absolute seconds; raised to the fabric's clock when a cross-fabric
    /// gate surfaced late — see `clock_s`). Endpoints are global host ids
    /// and are rebased into the fabric's address space.
    fn inject(
        &mut self,
        idx: usize,
        transfer: &Transfer,
        release_s: f64,
        job: usize,
    ) -> Result<()> {
        match self {
            Fabric::Optical {
                eng,
                order_map,
                node_base,
                clock_s,
                ..
            } => {
                let release_s = release_s.max(*clock_s);
                let local = Transfer {
                    src: NodeId(transfer.src.0 - *node_base),
                    dst: NodeId(transfer.dst.0 - *node_base),
                    ..transfer.clone()
                };
                eng.inject(&[GrantTransfer {
                    transfer: local,
                    release_s,
                    deps: Vec::new(),
                    job,
                }])?;
                order_map.push(idx);
                Ok(())
            }
            Fabric::Electrical {
                eng,
                flow_map,
                node_base,
                overhead_s,
                pending_release,
                clock_s,
                ..
            } => {
                let release_s = release_s.max(*clock_s);
                let base = eng.inject(&[EngineFlow {
                    src: transfer.src.0 - *node_base,
                    dst: transfer.dst.0 - *node_base,
                    bytes: transfer.bytes,
                    release_s,
                    delay_s: *overhead_s,
                    deps: Vec::new(),
                    job,
                }])?;
                debug_assert_eq!(base, flow_map.len());
                flow_map.push(idx);
                *pending_release = Some(match *pending_release {
                    Some(r) => r.min(release_s),
                    None => release_s,
                });
                Ok(())
            }
        }
    }

    /// Process the fabric's next event instant.
    fn step(&mut self) -> Result<()> {
        match self {
            Fabric::Optical { eng, clock_s, .. } => {
                if let Some(t) = eng.step() {
                    *clock_s = clock_s.max(t);
                }
                Ok(())
            }
            Fabric::Electrical {
                eng,
                pending_release,
                clock_s,
                ..
            } => {
                *pending_release = None;
                if let Some(t) = eng.step()? {
                    *clock_s = clock_s.max(t);
                }
                Ok(())
            }
        }
    }

    /// Drain completions recorded by previous steps, resolved to global
    /// DAG indices.
    fn drain(&mut self, out: &mut Vec<Done>) {
        match self {
            Fabric::Optical {
                eng,
                order_map,
                scratch,
                ..
            } => {
                scratch.clear();
                eng.drain_completions(scratch);
                out.extend(scratch.iter().map(|c| Done {
                    idx: order_map[c.order as usize],
                    start_s: c.start_s,
                    finish_s: c.finish_s,
                }));
            }
            Fabric::Electrical {
                eng,
                flow_map,
                scratch,
                ..
            } => {
                scratch.clear();
                eng.drain_completed(scratch);
                for &i in scratch.iter() {
                    let (start_s, finish_s) = eng.window(i);
                    out.push(Done {
                        idx: flow_map[i],
                        start_s,
                        finish_s,
                    });
                }
            }
        }
    }

    fn events(&self) -> u64 {
        match self {
            Fabric::Optical { eng, .. } => eng.events(),
            Fabric::Electrical { eng, .. } => eng.events(),
        }
    }

    fn peak_wavelength(&self) -> usize {
        match self {
            Fabric::Optical { eng, .. } => eng.peak_wavelength(),
            Fabric::Electrical { .. } => 0,
        }
    }

    /// (rate recomputations, solver work) — zero on optical fabrics.
    fn solver_stats(&self) -> (usize, usize) {
        match self {
            Fabric::Optical { .. } => (0, 0),
            Fabric::Electrical { eng, .. } => (eng.rate_recomputations(), eng.solver_work()),
        }
    }

    /// Surface the fabric's own diagnostic when the composed run stalled
    /// (stuck optical lanes, unreachable electrical flows).
    fn stall_diagnostic(&mut self) -> Result<()> {
        match self {
            Fabric::Optical {
                eng, wavelengths, ..
            } => {
                if let Some(lanes) = eng.stuck_lanes() {
                    return Err(OpticalError::WavelengthsExhausted {
                        available: *wavelengths,
                        requested: lanes,
                        step: 0,
                    }
                    .into());
                }
                Ok(())
            }
            Fabric::Electrical { eng, .. } => {
                eng.step()?;
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The composed substrate
// ---------------------------------------------------------------------------

/// Result of one composed event loop.
struct ComposedRun {
    timings: Vec<DagTiming>,
    makespan_s: f64,
    peak_wavelength: usize,
    rate_recomputations: usize,
    solver_work: usize,
    events: u64,
}

/// A hierarchical [`Substrate`]: per-group intra fabrics plus one
/// inter-group fabric, executing one domain-tagged DAG in a single event
/// loop (see module docs).
///
/// Hosts are dual-homed: every host has a port on its group's intra
/// fabric and a port on the inter fabric, so the two fabrics carry load
/// independently and contend only through dependency edges.
#[derive(Debug, Clone)]
pub struct ComposedSubstrate {
    spec: HierSpec,
    intra: FabricSpec,
    inter: FabricSpec,
    name: String,
}

impl ComposedSubstrate {
    /// Build a composed substrate.
    ///
    /// # Errors
    /// The intra fabric must attach exactly [`HierSpec::group_size`]
    /// hosts and the inter fabric exactly [`HierSpec::nodes`].
    pub fn new(spec: HierSpec, intra: FabricSpec, inter: FabricSpec) -> Result<Self> {
        HierSpec::new(spec.groups, spec.group_size)?;
        if intra.nodes() != spec.group_size {
            return Err(cfg_err("intra fabric size must equal the group size"));
        }
        if inter.nodes() != spec.nodes() {
            return Err(cfg_err("inter fabric must span every host"));
        }
        let name = format!("composed({}+{})", intra.label(), inter.label());
        Ok(Self {
            spec,
            intra,
            inter,
            name,
        })
    }

    /// The hierarchy shape.
    #[must_use]
    pub fn spec(&self) -> &HierSpec {
        &self.spec
    }

    /// The per-group intra fabric description.
    #[must_use]
    pub fn intra(&self) -> &FabricSpec {
        &self.intra
    }

    /// The inter-group fabric description.
    #[must_use]
    pub fn inter(&self) -> &FabricSpec {
        &self.inter
    }

    /// True when the spec is flat (one group): every execution method
    /// delegates verbatim to the intra substrate.
    #[must_use]
    pub fn is_flat(&self) -> bool {
        self.spec.groups == 1
    }

    fn flat(&self) -> Result<Box<dyn Substrate>> {
        self.intra.substrate()
    }

    /// The composed event loop (see module docs for the determinism
    /// contract). `arb` switches the optical fabrics into arbitrated
    /// (multi-job) grant order and tags electrical flows with jobs.
    fn run(&self, dag: &DepSchedule, arb: Option<&JobArbitration>) -> Result<ComposedRun> {
        let domains = self.spec.domains(dag)?;
        if let Some(a) = arb {
            if a.job_of.len() != dag.len() {
                return Err(cfg_err("job tags do not cover the schedule"));
            }
            if a.job_of.iter().any(|&j| j >= a.rank.len()) {
                return Err(cfg_err("job tag out of range of the rank table"));
            }
        }

        // Engines in fixed order: intra group 0 .. G-1, then inter.
        let mut fabrics: Vec<Fabric<'_>> = Vec::with_capacity(self.spec.groups + 1);
        for g in 0..self.spec.groups {
            fabrics.push(Fabric::build(&self.intra, g * self.spec.group_size, arb)?);
        }
        fabrics.push(Fabric::build(&self.inter, 0, arb)?);
        let engine_of: Vec<usize> = domains
            .iter()
            .map(|d| match d {
                Domain::Intra { group } => *group,
                Domain::Inter => self.spec.groups,
            })
            .collect();

        let transfers = dag.transfers();
        let n = transfers.len();
        let mut missing: Vec<usize> = transfers.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in transfers.iter().enumerate() {
            for &d in &t.deps {
                if d >= i {
                    return Err(cfg_err("dependency must precede its transfer"));
                }
                dependents[d].push(i);
            }
        }
        // Earliest legal start: own release, raised to the completion
        // instant of the latest predecessor as predecessors finish.
        let mut gate_s: Vec<f64> = transfers.iter().map(|t| t.release_s).collect();
        let job_of = |i: usize| arb.map_or(0, |a| a.job_of[i]);

        for i in 0..n {
            if missing[i] == 0 {
                fabrics[engine_of[i]].inject(i, &transfers[i].transfer, gate_s[i], job_of(i))?;
            }
        }

        let mut timings = vec![
            DagTiming {
                start_s: 0.0,
                finish_s: 0.0,
            };
            n
        ];
        let mut completed = 0usize;
        let mut done: Vec<Done> = Vec::new();
        let mut ready: Vec<usize> = Vec::new();
        while completed < n {
            // The engine with the earliest pending event steps next;
            // ties go to the lowest engine index.
            let mut best: Option<(f64, usize)> = None;
            for (k, f) in fabrics.iter_mut().enumerate() {
                if let Some(t) = f.peek() {
                    best = Some(match best {
                        Some((bt, bk)) if bt.total_cmp(&t).is_le() => (bt, bk),
                        _ => (t, k),
                    });
                }
            }
            done.clear();
            match best {
                Some((_, k)) => {
                    fabrics[k].step()?;
                    fabrics[k].drain(&mut done);
                }
                None => {
                    // The fluid engine promotes released flows lazily
                    // inside `step`; give every fabric one chance to make
                    // progress before declaring the run stuck.
                    let before: u64 = fabrics.iter().map(Fabric::events).sum();
                    for f in fabrics.iter_mut() {
                        f.step()?;
                        f.drain(&mut done);
                    }
                    let after: u64 = fabrics.iter().map(Fabric::events).sum();
                    if after == before && done.is_empty() {
                        for f in fabrics.iter_mut() {
                            f.stall_diagnostic()?;
                        }
                        return Err(cfg_err("composed run stalled with unfinished transfers"));
                    }
                }
            }
            ready.clear();
            for c in &done {
                timings[c.idx] = DagTiming {
                    start_s: c.start_s,
                    finish_s: c.finish_s,
                };
                completed += 1;
                for &j in &dependents[c.idx] {
                    if c.finish_s > gate_s[j] {
                        gate_s[j] = c.finish_s;
                    }
                    missing[j] -= 1;
                    if missing[j] == 0 {
                        ready.push(j);
                    }
                }
            }
            // Unblocked transfers enter their fabric in DAG order,
            // released at the bit-exact instant their last predecessor
            // finished (raised to their own release time if later).
            ready.sort_unstable();
            for &j in &ready {
                fabrics[engine_of[j]].inject(j, &transfers[j].transfer, gate_s[j], job_of(j))?;
            }
        }

        let makespan_s = timings.iter().fold(0.0f64, |m, t| m.max(t.finish_s));
        let mut peak_wavelength = 0usize;
        let mut rate_recomputations = 0usize;
        let mut solver_work = 0usize;
        let mut events = 0u64;
        for f in &fabrics {
            peak_wavelength = peak_wavelength.max(f.peak_wavelength());
            let (r, w) = f.solver_stats();
            rate_recomputations += r;
            solver_work += w;
            events += f.events();
        }
        Ok(ComposedRun {
            timings,
            makespan_s,
            peak_wavelength,
            rate_recomputations,
            solver_work,
            events,
        })
    }

    fn dag_report(&self, run: ComposedRun) -> DagRunReport {
        DagRunReport {
            substrate: self.name.clone(),
            makespan_s: run.makespan_s,
            transfers: run.timings,
            peak_wavelength: run.peak_wavelength,
            rate_recomputations: run.rate_recomputations,
            solver_work: run.solver_work,
            events: run.events,
        }
    }
}

impl Substrate for ComposedSubstrate {
    fn name(&self) -> &str {
        &self.name
    }

    fn nodes(&self) -> usize {
        self.spec.nodes()
    }

    fn execute(&mut self, schedule: &StepSchedule) -> Result<RunReport> {
        if self.is_flat() {
            return self.flat()?.execute(schedule);
        }
        // Barrier steps across two fabrics: lower to the barrier DAG and
        // rebuild per-step durations from the stage frontier (a step's
        // transfers are gated on the whole previous step, so stage ends
        // are non-decreasing).
        let dag = DepSchedule::from_steps(schedule);
        let run = self.run(&dag, None)?;
        let mut stage_end = vec![0.0f64; schedule.len()];
        for (t, timing) in dag.transfers().iter().zip(&run.timings) {
            stage_end[t.stage] = stage_end[t.stage].max(timing.finish_s);
        }
        let mut steps = Vec::with_capacity(schedule.len());
        let mut prev_end = 0.0f64;
        for (k, step) in schedule.steps().iter().enumerate() {
            let end = stage_end[k].max(prev_end);
            steps.push(StepTiming {
                duration_s: end - prev_end,
                transfers: step.len(),
                bytes: step.iter().map(|t| t.bytes).sum(),
                peak_wavelength: 0,
            });
            prev_end = end;
        }
        Ok(RunReport {
            substrate: self.name.clone(),
            total_time_s: run.makespan_s,
            steps,
        })
    }

    fn execute_dag(&mut self, dag: &DepSchedule) -> Result<DagRunReport> {
        if self.is_flat() {
            return self.flat()?.execute_dag(dag);
        }
        let run = self.run(dag, None)?;
        Ok(self.dag_report(run))
    }

    fn execute_dag_jobs(
        &mut self,
        dag: &DepSchedule,
        arb: &JobArbitration,
    ) -> Result<TenantDagRun> {
        if self.is_flat() {
            return self.flat()?.execute_dag_jobs(dag, arb);
        }
        let run = self.run(dag, Some(arb))?;
        let jobs = arb.rank.len();
        // Like the flat optical path: resources are granted whole (and
        // the fluid rates live inside the inter engine), so delivered
        // bytes are the exact payload sums and there is no fractional
        // rate attribution to report.
        let mut service = vec![0.0f64; jobs];
        for (t, &j) in dag.transfers().iter().zip(&arb.job_of) {
            service[j] += t.transfer.bytes as f64;
        }
        Ok(TenantDagRun {
            dag: self.dag_report(run),
            job_active_s: vec![0.0; jobs],
            job_service_bytes: service,
            job_peak_rate_bps: vec![0.0; jobs],
        })
    }

    fn execute_dag_faulted(
        &mut self,
        dag: &DepSchedule,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultRunReport> {
        if self.is_flat() {
            return self.flat()?.execute_dag_faulted(dag, script, policy);
        }
        Err(cfg_err(
            "fault injection on a multi-group composed substrate is not supported yet",
        ))
    }

    fn execute_dag_jobs_faulted(
        &mut self,
        dag: &DepSchedule,
        arb: &JobArbitration,
        script: &FaultScript,
        policy: FaultPolicy,
    ) -> Result<FaultRunReport> {
        if self.is_flat() {
            return self
                .flat()?
                .execute_dag_jobs_faulted(dag, arb, script, policy);
        }
        Err(cfg_err(
            "fault injection on a multi-group composed substrate is not supported yet",
        ))
    }

    fn execute_stream_until(
        &mut self,
        spec: &StreamSpec,
        pause_after_arrivals: Option<u64>,
    ) -> Result<StreamOutcome> {
        if self.is_flat() {
            return self
                .flat()?
                .execute_stream_until(spec, pause_after_arrivals);
        }
        Err(cfg_err(
            "streams on a multi-group composed substrate are not supported yet",
        ))
    }

    fn resume_stream(
        &mut self,
        spec: &StreamSpec,
        checkpoint: &StreamCheckpoint,
        pause_after_arrivals: Option<u64>,
    ) -> Result<StreamOutcome> {
        if self.is_flat() {
            return self
                .flat()?
                .resume_stream(spec, checkpoint, pause_after_arrivals);
        }
        Err(cfg_err(
            "streams on a multi-group composed substrate are not supported yet",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DepTransfer;

    fn optical_cfg(n: usize) -> OpticalConfig {
        OpticalConfig::new(n, 4)
            .with_lambda_bandwidth(1e9)
            .with_message_overhead(0.0)
            .with_hop_propagation(0.0)
    }

    fn electrical_net(n: usize) -> Network {
        electrical_sim::topology::star_cluster(n, 1e9, 0.0)
    }

    fn composed(groups: usize, group_size: usize) -> ComposedSubstrate {
        ComposedSubstrate::new(
            HierSpec::new(groups, group_size).unwrap(),
            FabricSpec::optical(optical_cfg(group_size)),
            FabricSpec::electrical(electrical_net(groups * group_size), 0.0),
        )
        .unwrap()
    }

    fn t(src: usize, dst: usize, bytes: u64) -> Transfer {
        Transfer::shortest(NodeId(src), NodeId(dst), bytes)
    }

    fn dep(tr: Transfer, deps: Vec<usize>, stage: usize) -> DepTransfer {
        DepTransfer {
            transfer: tr,
            deps,
            release_s: 0.0,
            stage,
        }
    }

    #[test]
    fn spec_validates_shape() {
        assert!(HierSpec::new(0, 4).is_err());
        assert!(HierSpec::new(2, 1).is_err());
        let spec = HierSpec::new(3, 4).unwrap();
        assert_eq!(spec.nodes(), 12);
        assert_eq!(spec.group_of(7), 1);
        assert_eq!(spec.local(7), 3);
    }

    #[test]
    fn domains_derive_from_endpoints() {
        let spec = HierSpec::new(2, 4).unwrap();
        assert_eq!(spec.domain_of(0, 3), Domain::Intra { group: 0 });
        assert_eq!(spec.domain_of(5, 6), Domain::Intra { group: 1 });
        assert_eq!(spec.domain_of(3, 4), Domain::Inter);
        assert_eq!(Domain::Inter.label(), "inter");
        assert_eq!(Domain::Intra { group: 0 }.label(), "intra");
    }

    #[test]
    fn domains_reject_out_of_range_endpoints() {
        let spec = HierSpec::new(2, 4).unwrap();
        let dag = DepSchedule::from_transfers(vec![dep(t(0, 9, 1), vec![], 0)]).unwrap();
        assert!(spec.domains(&dag).is_err());
    }

    #[test]
    fn new_rejects_mismatched_fabric_sizes() {
        let spec = HierSpec::new(2, 4).unwrap();
        assert!(ComposedSubstrate::new(
            spec,
            FabricSpec::optical(optical_cfg(8)),
            FabricSpec::electrical(electrical_net(8), 0.0),
        )
        .is_err());
        assert!(ComposedSubstrate::new(
            spec,
            FabricSpec::optical(optical_cfg(4)),
            FabricSpec::electrical(electrical_net(4), 0.0),
        )
        .is_err());
    }

    #[test]
    fn flat_spec_delegates_bit_exactly_to_the_intra_substrate() {
        let mut flat = OpticalSubstrate::new(optical_cfg(4)).unwrap();
        let mut comp = composed(1, 4);
        assert!(comp.is_flat());
        let dag = DepSchedule::from_transfers(vec![
            dep(t(0, 1, 1 << 20), vec![], 0),
            dep(t(2, 3, 1 << 20), vec![], 0),
            dep(t(1, 2, 1 << 20), vec![0, 1], 1),
        ])
        .unwrap();
        let a = flat.execute_dag(&dag).unwrap();
        let b = comp.execute_dag(&dag).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cross_fabric_dependency_is_honored_at_the_completion_instant() {
        let mut comp = composed(2, 4);
        let dag = DepSchedule::from_transfers(vec![
            dep(t(0, 1, 1 << 20), vec![], 0),
            dep(t(1, 5, 1 << 20), vec![0], 1),
            dep(t(5, 6, 1 << 20), vec![1], 2),
        ])
        .unwrap();
        let report = comp.execute_dag(&dag).unwrap();
        assert_eq!(report.substrate, "composed(optical+electrical)");
        let tr = &report.transfers;
        assert!(tr[1].start_s >= tr[0].finish_s);
        assert!(tr[2].start_s >= tr[1].finish_s);
        assert!(report.makespan_s >= tr[2].finish_s);
        assert!(report.events > 0);
    }

    #[test]
    fn composed_runs_are_deterministic() {
        let dag = DepSchedule::from_transfers(vec![
            dep(t(0, 2, 3 << 19), vec![], 0),
            dep(t(4, 7, 1 << 20), vec![], 0),
            dep(t(2, 6, 1 << 19), vec![0], 1),
            dep(t(7, 3, 1 << 18), vec![1], 1),
            dep(t(3, 1, 1 << 20), vec![2, 3], 2),
        ])
        .unwrap();
        let a = composed(2, 4).execute_dag(&dag).unwrap();
        let b = composed(2, 4).execute_dag(&dag).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
    }

    #[test]
    fn independent_domains_overlap_in_time() {
        // An intra transfer and an inter transfer with no edges between
        // them: the composed run must not serialize the fabrics.
        let mut comp = composed(2, 4);
        let dag = DepSchedule::from_transfers(vec![
            dep(t(0, 1, 8 << 20), vec![], 0),
            dep(t(3, 4, 8 << 20), vec![], 0),
        ])
        .unwrap();
        let report = comp.execute_dag(&dag).unwrap();
        let tr = &report.transfers;
        // Both start at their release instants, not one after the other.
        assert!(tr[0].start_s < tr[1].finish_s);
        assert!(tr[1].start_s < tr[0].finish_s);
    }

    #[test]
    fn execute_lowers_barrier_steps_across_both_fabrics() {
        let mut comp = composed(2, 4);
        let sched = StepSchedule::from_steps(vec![
            vec![t(0, 1, 1 << 20), t(4, 5, 1 << 20)],
            vec![t(1, 4, 1 << 20)],
        ]);
        let report = comp.execute(&sched).unwrap();
        assert_eq!(report.step_count(), 2);
        assert!(report.total_time_s > 0.0);
        let sum: f64 = report.steps.iter().map(|s| s.duration_s).sum();
        assert!((sum - report.total_time_s).abs() < 1e-12);
    }

    #[test]
    fn multi_group_faults_and_streams_are_rejected() {
        let mut comp = composed(2, 4);
        let dag = DepSchedule::from_transfers(vec![dep(t(0, 1, 1), vec![], 0)]).unwrap();
        assert!(comp
            .execute_dag_faulted(&dag, &FaultScript::default(), FaultPolicy::FailJob)
            .is_err());
    }

    #[test]
    fn jobs_are_arbitrated_across_fabrics() {
        let mut comp = composed(2, 4);
        let dag = DepSchedule::from_transfers(vec![
            dep(t(0, 1, 1 << 20), vec![], 0),
            dep(t(1, 5, 1 << 20), vec![0], 1),
            dep(t(2, 3, 1 << 20), vec![], 1),
        ])
        .unwrap();
        let arb = JobArbitration {
            job_of: vec![0, 0, 1],
            rank: vec![0, 1],
            fair_share: false,
        };
        let run = comp.execute_dag_jobs(&dag, &arb).unwrap();
        assert_eq!(run.job_service_bytes.len(), 2);
        assert!(run.job_service_bytes[0] > run.job_service_bytes[1]);
        assert!(run.dag.makespan_s > 0.0);
    }
}
