//! Construction of the Wrht hierarchical-tree plan.
//!
//! A plan records, for each reduce-stage level, the contiguous groups and
//! their representative (middle) nodes, and the final all-to-all among the
//! surviving representatives. The broadcast stage is the mirror image and
//! is derived from the same levels by [`crate::lower`].

use crate::alltoall::{alltoall_pairs, measured_alltoall_wavelengths};
use crate::error::{Result, WrhtError};
use crate::steps::{alltoall_wavelength_requirement, tree_wavelength_requirement};
use optical_sim::topology::RingTopology;
use serde::{Deserialize, Serialize};

/// One contiguous group at some tree level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Group {
    /// Ring positions of the members, ascending.
    pub members: Vec<usize>,
    /// The representative (middle member).
    pub rep: usize,
}

impl Group {
    /// Build a group over `members` (ascending ring positions), selecting
    /// the middle node as representative.
    #[must_use]
    pub fn new(members: Vec<usize>) -> Self {
        debug_assert!(!members.is_empty());
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
        let rep = members[members.len() / 2];
        Self { members, rep }
    }

    /// Members below the representative (they transmit clockwise).
    #[must_use]
    pub fn left_side(&self) -> Vec<usize> {
        self.members
            .iter()
            .copied()
            .filter(|&p| p < self.rep)
            .collect()
    }

    /// Members above the representative (they transmit counter-clockwise).
    #[must_use]
    pub fn right_side(&self) -> Vec<usize> {
        self.members
            .iter()
            .copied()
            .filter(|&p| p > self.rep)
            .collect()
    }

    /// Size of the larger side = wavelength groups this group needs.
    #[must_use]
    pub fn wavelength_requirement(&self) -> usize {
        self.left_side().len().max(self.right_side().len())
    }

    /// Longest member→representative hop distance in this group.
    ///
    /// The lowering sends members below the representative clockwise and
    /// members above it counter-clockwise, so each member pays exactly
    /// `|member − rep|` ring hops. Computed with `abs_diff` so unsorted or
    /// wrapped member lists (e.g. hand-built or deserialized groups whose
    /// representative is not between `first` and `last`) measure correctly
    /// instead of underflowing.
    #[must_use]
    pub fn hop_span(&self) -> usize {
        self.members
            .iter()
            .map(|&m| m.abs_diff(self.rep))
            .max()
            .unwrap_or(0)
    }
}

/// One reduce-stage level: a partition of the currently active nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Level {
    /// The level's groups, in ring order.
    pub groups: Vec<Group>,
    /// Wavelength groups required: the largest group side at this level
    /// (`⌊m/2⌋` when every group is full).
    pub lambda_requirement: usize,
    /// Striping lanes per transfer: `max(1, ⌊w / lambda_requirement⌋)`.
    pub lanes: usize,
}

impl Level {
    /// Longest member→representative hop distance over the level's groups
    /// (the step duration is set by the farthest transmitter).
    #[must_use]
    pub fn max_hop_span(&self) -> usize {
        self.groups.iter().map(Group::hop_span).max().unwrap_or(0)
    }
}

/// The final all-to-all step among surviving representatives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllToAll {
    /// Ring positions of the participants.
    pub reps: Vec<usize>,
    /// Wavelengths a unit-lane assignment actually needs (measured by a
    /// trial First-Fit RWA; upper-bounded by `⌈m*²/8⌉` in theory).
    pub lambda_requirement: usize,
    /// Striping lanes per transfer.
    pub lanes: usize,
}

/// A complete Wrht plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrhtPlan {
    /// Ring size.
    pub n: usize,
    /// Group size the tree was built with.
    pub m: usize,
    /// Wavelengths per waveguide.
    pub wavelengths: usize,
    /// Reduce-stage levels, root-most last.
    pub levels: Vec<Level>,
    /// The fused all-to-all step (absent only when `n == 1`, or when the
    /// recursion collapses to a single representative first).
    pub alltoall: Option<AllToAll>,
    /// The surviving representatives after the reduce stage.
    pub final_reps: Vec<usize>,
}

impl WrhtPlan {
    /// Total communication steps: reduce levels + optional all-to-all +
    /// mirrored broadcast levels.
    #[must_use]
    pub fn step_count(&self) -> usize {
        2 * self.levels.len() + usize::from(self.alltoall.is_some())
    }

    /// Tree depth (number of reduce levels).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Longest shortest-path hop distance between any two all-to-all
    /// participants (0 when the plan has no all-to-all step).
    #[must_use]
    pub fn alltoall_hop_span(&self) -> usize {
        let Some(ata) = &self.alltoall else { return 0 };
        let n = self.n.max(2);
        ata.reps
            .iter()
            .flat_map(|&a| ata.reps.iter().map(move |&b| (a, b)))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| {
                let cw = (b + n - a) % n;
                cw.min(n - cw)
            })
            .max()
            .unwrap_or(0)
    }

    /// Peak wavelength-group requirement over all steps.
    #[must_use]
    pub fn peak_lambda_requirement(&self) -> usize {
        let tree = self
            .levels
            .iter()
            .map(|l| l.lambda_requirement)
            .max()
            .unwrap_or(0);
        let ata = self.alltoall.as_ref().map_or(0, |a| a.lambda_requirement);
        tree.max(ata)
    }
}

/// When does the recursion stop and hand over to the all-to-all step?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StopPolicy {
    /// The paper's rule: stop at the **first** level whose survivors fit an
    /// all-to-all within the wavelength budget.
    #[default]
    EarliestFeasible,
    /// Extension (Wrht⁺): consider **every** feasible stop level (and the
    /// run-to-root plan) and let the cost model pick; implemented by
    /// [`candidate_plans`] + the optimizer.
    BestDepth,
}

/// Build the Wrht plan for `n` nodes, group size `m`, `w` wavelengths,
/// with the paper's earliest-feasible stop rule.
///
/// Follows the paper: partition into contiguous groups of `m`, pick middle
/// representatives, recurse **until the wavelengths suffice for an
/// all-to-all among the survivors** (checked both against the `⌈m*²/8⌉`
/// bound and an actual trial wavelength assignment).
///
/// ```
/// use wrht_core::plan::build_plan;
///
/// let plan = build_plan(64, 8, 64).unwrap();
/// assert_eq!(plan.m, 8);
/// assert_eq!(plan.levels[0].groups.len(), 64 / 8);
/// assert!(plan.step_count() >= 1);
/// ```
pub fn build_plan(n: usize, m: usize, w: usize) -> Result<WrhtPlan> {
    let mut candidates = candidate_plans(n, m, w)?;
    // candidate_plans returns earliest-stop first.
    Ok(candidates.swap_remove(0))
}

/// Enumerate every structurally distinct Wrht plan for `(n, m, w)`:
/// one per feasible all-to-all stop level (earliest first), plus the
/// run-to-single-root plan (always last). The first element is exactly the
/// paper's plan ([`StopPolicy::EarliestFeasible`]).
pub fn candidate_plans(n: usize, m: usize, w: usize) -> Result<Vec<WrhtPlan>> {
    let everyone: Vec<usize> = (0..n).collect();
    candidate_plans_over(n, &everyone, m, w)
}

/// Build the paper's plan over a *subset* of ring nodes — the
/// fault-tolerance extension: when nodes fail, the all-reduce re-plans over
/// the survivors (failed nodes' micro-rings keep bypassing light, so paths
/// may pass through them).
pub fn build_plan_over(
    ring_n: usize,
    participants: &[usize],
    m: usize,
    w: usize,
) -> Result<WrhtPlan> {
    let mut candidates = candidate_plans_over(ring_n, participants, m, w)?;
    Ok(candidates.swap_remove(0))
}

/// [`candidate_plans`] over an explicit participant set (ascending,
/// distinct ring positions `< ring_n`).
pub fn candidate_plans_over(
    ring_n: usize,
    participants: &[usize],
    m: usize,
    w: usize,
) -> Result<Vec<WrhtPlan>> {
    let n = participants.len();
    if n == 0 {
        return Err(WrhtError::NoNodes);
    }
    debug_assert!(participants.windows(2).all(|p| p[0] < p[1]));
    debug_assert!(participants.iter().all(|&p| p < ring_n.max(1)));
    if m < 2 {
        return Err(WrhtError::GroupSizeTooSmall(m));
    }
    if tree_wavelength_requirement(m) > w {
        return Err(WrhtError::GroupSizeNeedsMoreWavelengths { m, wavelengths: w });
    }

    let base = WrhtPlan {
        n: ring_n,
        m,
        wavelengths: w,
        levels: Vec::new(),
        alltoall: None,
        final_reps: vec![participants[0]],
    };
    if n == 1 {
        return Ok(vec![base]);
    }

    let topo = RingTopology::new(ring_n.max(2));
    let mut active: Vec<usize> = participants.to_vec();
    let mut levels: Vec<Level> = Vec::new();
    let mut candidates: Vec<WrhtPlan> = Vec::new();

    loop {
        if active.len() == 1 {
            // Run-to-root plan: reduce to one node, broadcast back.
            let mut plan = base.clone();
            plan.levels = levels;
            plan.final_reps = active;
            candidates.push(plan);
            return Ok(candidates);
        }
        // Would stopping here (all-to-all among `active`) be feasible?
        if alltoall_wavelength_requirement(active.len()) <= w {
            let pairs = alltoall_pairs(&active);
            let measured = measured_alltoall_wavelengths(&topo, &pairs, w)?;
            if measured <= w {
                let mut plan = base.clone();
                plan.levels = levels.clone();
                plan.final_reps = active.clone();
                plan.alltoall = Some(AllToAll {
                    reps: active.clone(),
                    lambda_requirement: measured,
                    lanes: (w / measured).max(1),
                });
                candidates.push(plan);
            }
        }
        // Partition into contiguous groups of m and recurse on the middles.
        let groups: Vec<Group> = active.chunks(m).map(|c| Group::new(c.to_vec())).collect();
        let lambda_requirement = groups
            .iter()
            .map(Group::wavelength_requirement)
            .max()
            .unwrap_or(0)
            .max(1);
        let lanes = (w / lambda_requirement).max(1);
        active = groups.iter().map(|g| g.rep).collect();
        levels.push(Level {
            groups,
            lambda_requirement,
            lanes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_sides_and_requirement() {
        let g = Group::new(vec![0, 1, 2, 3, 4]);
        assert_eq!(g.rep, 2);
        assert_eq!(g.left_side(), vec![0, 1]);
        assert_eq!(g.right_side(), vec![3, 4]);
        assert_eq!(g.wavelength_requirement(), 2); // floor(5/2)

        let g = Group::new(vec![10, 11, 12, 13]);
        assert_eq!(g.rep, 12);
        assert_eq!(g.wavelength_requirement(), 2); // floor(4/2)

        let g = Group::new(vec![7]);
        assert_eq!(g.rep, 7);
        assert_eq!(g.wavelength_requirement(), 0);
    }

    #[test]
    fn hop_span_matches_first_last_for_sorted_groups() {
        let g = Group::new(vec![4, 5, 6, 7, 8]);
        assert_eq!(g.hop_span(), (g.rep - 4).max(8 - g.rep));
        let g = Group::new(vec![3]);
        assert_eq!(g.hop_span(), 0);
    }

    #[test]
    fn hop_span_is_defensive_for_wrapped_and_unsorted_groups() {
        // A wrapped ring group whose representative is numerically the
        // smallest member: (rep - first) would underflow.
        let wrapped = Group {
            members: vec![30, 31, 0, 1],
            rep: 0,
        };
        assert_eq!(wrapped.hop_span(), 31);
        // Unsorted members with the representative not between the list's
        // first and last elements.
        let unsorted = Group {
            members: vec![5, 3, 8],
            rep: 3,
        };
        assert_eq!(unsorted.hop_span(), 5);
    }

    #[test]
    fn level_and_alltoall_spans_aggregate_groups() {
        let p = build_plan(64, 4, 16).unwrap();
        for level in &p.levels {
            assert_eq!(
                level.max_hop_span(),
                level.groups.iter().map(Group::hop_span).max().unwrap()
            );
        }
        let ata = p.alltoall.as_ref().unwrap();
        assert!(p.alltoall_hop_span() <= p.n / 2);
        assert!(ata.reps.len() >= 2);
        // A plan without an all-to-all reports a zero span.
        let root = candidate_plans(64, 4, 16).unwrap().pop().unwrap();
        assert!(root.alltoall.is_none());
        assert_eq!(root.alltoall_hop_span(), 0);
    }

    #[test]
    fn plan_rejects_bad_params() {
        assert!(matches!(build_plan(0, 2, 4), Err(WrhtError::NoNodes)));
        assert!(matches!(
            build_plan(8, 1, 4),
            Err(WrhtError::GroupSizeTooSmall(1))
        ));
        assert!(matches!(
            build_plan(64, 20, 4),
            Err(WrhtError::GroupSizeNeedsMoreWavelengths { .. })
        ));
    }

    #[test]
    fn single_node_plan_is_empty() {
        let p = build_plan(1, 2, 4).unwrap();
        assert_eq!(p.step_count(), 0);
        assert!(p.alltoall.is_none());
    }

    #[test]
    fn two_nodes_is_one_alltoall_step() {
        let p = build_plan(2, 2, 1).unwrap();
        assert_eq!(p.depth(), 0);
        assert_eq!(p.step_count(), 1);
        let ata = p.alltoall.unwrap();
        assert_eq!(ata.reps, vec![0, 1]);
        assert_eq!(ata.lambda_requirement, 1);
    }

    #[test]
    fn ample_wavelengths_short_circuit_to_single_step() {
        // ceil(16^2/8) = 32 <= 64: all 16 nodes all-to-all at once.
        let p = build_plan(16, 4, 64).unwrap();
        assert_eq!(p.depth(), 0);
        assert_eq!(p.step_count(), 1);
    }

    #[test]
    fn scarce_wavelengths_build_a_deep_tree() {
        // w = 1: groups of 2 (m=2 needs floor(2/2)=1 lambda); all-to-all
        // feasible only among 2 reps (ceil(4/8)=1).
        let p = build_plan(64, 2, 1).unwrap();
        assert_eq!(p.final_reps.len(), 2);
        // 64 -> 32 -> 16 -> 8 -> 4 -> 2: five levels, then all-to-all.
        assert_eq!(p.depth(), 5);
        assert_eq!(p.step_count(), 11);
        for level in &p.levels {
            assert_eq!(level.lambda_requirement, 1);
            assert_eq!(level.lanes, 1);
        }
    }

    #[test]
    fn levels_shrink_by_factor_m() {
        let p = build_plan(1024, 4, 8).unwrap();
        let mut expected = 1024usize;
        for level in &p.levels {
            assert_eq!(
                level.groups.iter().map(|g| g.members.len()).sum::<usize>(),
                expected
            );
            expected = expected.div_ceil(4);
        }
    }

    #[test]
    fn groups_are_contiguous_and_disjoint() {
        let p = build_plan(100, 7, 16).unwrap();
        let level = &p.levels[0];
        let mut seen = Vec::new();
        for g in &level.groups {
            assert!(g.members.len() <= 7);
            assert!(g.members.windows(2).all(|w| w[1] == w[0] + 1));
            seen.extend_from_slice(&g.members);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn lanes_scale_with_spare_wavelengths() {
        let p = build_plan(1024, 8, 64).unwrap();
        // floor(8/2) = 4 lambda groups; 64/4 = 16 lanes.
        assert_eq!(p.levels[0].lambda_requirement, 4);
        assert_eq!(p.levels[0].lanes, 16);
    }

    #[test]
    fn final_reps_match_alltoall() {
        let p = build_plan(256, 4, 16).unwrap();
        let ata = p.alltoall.as_ref().unwrap();
        assert_eq!(ata.reps, p.final_reps);
        assert!(ata.lambda_requirement <= 16);
        assert!(p.peak_lambda_requirement() <= 16);
    }

    #[test]
    fn candidate_plans_enumerate_stop_levels() {
        // n=1024, m=2, w=64: feasible stops at 16, 8, 4, 2 survivors plus
        // the run-to-root plan.
        let candidates = candidate_plans(1024, 2, 64).unwrap();
        assert!(candidates.len() >= 3);
        // First candidate is the paper's earliest-feasible plan.
        assert_eq!(candidates[0], build_plan(1024, 2, 64).unwrap());
        // Depths strictly increase; the last has a single root and no
        // all-to-all.
        for w in candidates.windows(2) {
            assert!(w[0].depth() < w[1].depth());
        }
        let root = candidates.last().unwrap();
        assert!(root.alltoall.is_none());
        assert_eq!(root.final_reps.len(), 1);
        // All intermediate candidates end in an all-to-all.
        for c in &candidates[..candidates.len() - 1] {
            assert!(c.alltoall.is_some());
        }
    }

    #[test]
    fn subset_planning_skips_failed_nodes() {
        // Nodes 3, 10 and 11 failed on a 16-ring.
        let survivors: Vec<usize> = (0..16).filter(|p| ![3, 10, 11].contains(p)).collect();
        let plan = build_plan_over(16, &survivors, 4, 2).unwrap();
        assert_eq!(plan.n, 16); // physical ring unchanged
        let mut seen: Vec<usize> = plan.levels[0]
            .groups
            .iter()
            .flat_map(|g| g.members.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, survivors);
        for g in &plan.levels[0].groups {
            assert!(!g.members.contains(&3));
        }
    }

    #[test]
    fn subset_of_one_is_trivial() {
        let plan = build_plan_over(8, &[5], 2, 1).unwrap();
        assert_eq!(plan.step_count(), 0);
        assert_eq!(plan.final_reps, vec![5]);
    }

    #[test]
    fn empty_subset_errors() {
        assert!(matches!(
            build_plan_over(8, &[], 2, 1),
            Err(WrhtError::NoNodes)
        ));
    }

    #[test]
    fn candidate_plans_single_node() {
        let candidates = candidate_plans(1, 4, 8).unwrap();
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].step_count(), 0);
    }

    #[test]
    fn stop_policy_default_is_paper_rule() {
        assert_eq!(StopPolicy::default(), StopPolicy::EarliestFeasible);
    }

    #[test]
    fn step_count_parity() {
        // With an all-to-all the step count is odd; the paper's
        // "2*ceil(log_m N) - 1" case.
        for (n, m, w) in [(64usize, 4usize, 4usize), (128, 2, 2), (1024, 8, 16)] {
            let p = build_plan(n, m, w).unwrap();
            assert_eq!(p.step_count() % 2, 1, "n={n} m={m} w={w}");
        }
    }
}
