//! The paper's counting laws: steps, representatives, wavelengths.
//!
//! Section 2 of the paper derives
//!
//! * step count `2⌈log_m N⌉` or `2⌈log_m N⌉ − 1`;
//! * tree-step wavelength requirement `⌊m/2⌋`;
//! * surviving representatives `m* = ⌈N / m^(⌈log_m N⌉−1)⌉`;
//! * all-to-all wavelength requirement `⌈(m*)²/8⌉` (Liang–Shen).
//!
//! These are pinned here as standalone arithmetic so tests can check the
//! constructed plans against the published formulas.
//!
//! ```
//! use wrht_core::steps::*;
//!
//! assert_eq!(ceil_log(1024, 8), 4); // 8^4 = 4096 >= 1024 > 8^3
//! assert_eq!(tree_wavelength_requirement(8), 4); // floor(m/2)
//! assert_eq!(alltoall_wavelength_requirement(8), 8); // ceil(8*8/8)
//! assert_eq!(paper_step_count(64, 8, false), 2 * ceil_log(64, 8) as usize);
//! ```

/// `⌈log_m n⌉` for `m >= 2`, `n >= 1` (0 for `n == 1`).
#[must_use]
pub fn ceil_log(n: usize, m: usize) -> u32 {
    assert!(m >= 2, "base must be >= 2");
    assert!(n >= 1, "n must be >= 1");
    let mut k = 0;
    let mut reach = 1usize;
    while reach < n {
        reach = reach.saturating_mul(m);
        k += 1;
    }
    k
}

/// Wavelengths a full group of `m` needs in a tree step: `⌊m/2⌋`.
#[must_use]
pub fn tree_wavelength_requirement(m: usize) -> usize {
    m / 2
}

/// Representatives surviving after `⌈log_m N⌉ − 1` levels:
/// `m* = ⌈N / m^(⌈log_m N⌉−1)⌉` (the paper's formula; 1 when `n == 1`).
#[must_use]
pub fn surviving_reps(n: usize, m: usize) -> usize {
    let l = ceil_log(n, m);
    if l == 0 {
        return 1;
    }
    let denom = m.saturating_pow(l - 1);
    n.div_ceil(denom)
}

/// Wavelengths an all-to-all among `k` ring nodes needs: `⌈k²/8⌉`
/// (Liang & Shen's bound for all-to-all in WDM rings; 1 when `k <= 2`).
#[must_use]
pub fn alltoall_wavelength_requirement(k: usize) -> usize {
    if k <= 1 {
        0
    } else {
        (k * k).div_ceil(8)
    }
}

/// The paper's step count when the final all-to-all fuses the top of the
/// tree (`2⌈log_m N⌉ − 1`) and when it does not (`2⌈log_m N⌉`).
#[must_use]
pub fn paper_step_count(n: usize, m: usize, fused_alltoall: bool) -> usize {
    let two_l = 2 * ceil_log(n, m) as usize;
    if fused_alltoall {
        two_l.saturating_sub(1)
    } else {
        two_l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plan;

    #[test]
    fn ceil_log_values() {
        assert_eq!(ceil_log(1, 2), 0);
        assert_eq!(ceil_log(2, 2), 1);
        assert_eq!(ceil_log(1024, 2), 10);
        assert_eq!(ceil_log(1024, 4), 5);
        assert_eq!(ceil_log(1000, 10), 3);
        assert_eq!(ceil_log(1001, 10), 4);
        assert_eq!(ceil_log(27, 3), 3);
        assert_eq!(ceil_log(28, 3), 4);
    }

    #[test]
    fn surviving_reps_formula() {
        // N = 1024, m = 4: L = 5, m* = ceil(1024 / 4^4) = 4.
        assert_eq!(surviving_reps(1024, 4), 4);
        // N = 1000, m = 10: L = 3, m* = ceil(1000/100) = 10.
        assert_eq!(surviving_reps(1000, 10), 10);
        // N = 100, m = 7: L = 3, m* = ceil(100/49) = 3.
        assert_eq!(surviving_reps(100, 7), 3);
        assert_eq!(surviving_reps(1, 5), 1);
    }

    #[test]
    fn alltoall_requirement_values() {
        assert_eq!(alltoall_wavelength_requirement(0), 0);
        assert_eq!(alltoall_wavelength_requirement(1), 0);
        assert_eq!(alltoall_wavelength_requirement(2), 1);
        assert_eq!(alltoall_wavelength_requirement(4), 2);
        assert_eq!(alltoall_wavelength_requirement(8), 8);
        assert_eq!(alltoall_wavelength_requirement(16), 32);
        assert_eq!(alltoall_wavelength_requirement(22), 61);
    }

    #[test]
    fn tree_requirement_is_floor_half() {
        assert_eq!(tree_wavelength_requirement(2), 1);
        assert_eq!(tree_wavelength_requirement(7), 3);
        assert_eq!(tree_wavelength_requirement(8), 4);
    }

    #[test]
    fn paper_step_count_values() {
        assert_eq!(paper_step_count(1024, 4, true), 9);
        assert_eq!(paper_step_count(1024, 4, false), 10);
        assert_eq!(paper_step_count(2, 2, true), 1);
    }

    /// With just enough wavelengths for the `m*`-survivor all-to-all, the
    /// constructed plan realizes the paper's two-valued law:
    /// `2⌈log_m N⌉ − 1` steps when the all-to-all fuses the top of the
    /// tree, `2⌈log_m N⌉` when the *measured* wavelength requirement of the
    /// concrete assignment exceeds the Liang–Shen bound and the recursion
    /// must run to a single root instead.
    #[test]
    fn plans_match_paper_step_count_in_the_formula_regime() {
        for (n, m) in [(1024usize, 4usize), (256, 4), (64, 2), (729, 3)] {
            let m_star = surviving_reps(n, m);
            let need = alltoall_wavelength_requirement(m_star);
            let w = need.max(tree_wavelength_requirement(m));
            let plan = build_plan(n, m, w).unwrap();
            let fused = plan.alltoall.is_some();
            assert!(
                plan.step_count() == paper_step_count(n, m, true)
                    || plan.step_count() == paper_step_count(n, m, false),
                "n={n} m={m} w={w}: {} steps",
                plan.step_count()
            );
            if fused && plan.depth() == ceil_log(n, m) as usize - 1 {
                assert_eq!(plan.final_reps.len(), m_star, "n={n} m={m}");
                assert_eq!(plan.step_count(), paper_step_count(n, m, true));
            }
        }
    }
}
