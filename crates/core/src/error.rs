//! Error types for Wrht planning and lowering.

use electrical_sim::NetError;
use optical_sim::OpticalError;
use std::fmt;

/// Errors from plan construction, lowering or simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum WrhtError {
    /// Group size must be at least 2.
    GroupSizeTooSmall(usize),
    /// Group size `m` needs `⌊m/2⌋ <= w` wavelengths for its tree steps.
    GroupSizeNeedsMoreWavelengths {
        /// Requested group size.
        m: usize,
        /// Available wavelengths.
        wavelengths: usize,
    },
    /// The deployment has no nodes.
    NoNodes,
    /// No feasible group size exists for the given wavelength budget.
    NoFeasiblePlan {
        /// Node count.
        n: usize,
        /// Available wavelengths.
        wavelengths: usize,
    },
    /// An error bubbled up from the optical substrate.
    Optical(OpticalError),
    /// An error bubbled up from the electrical substrate.
    Electrical(NetError),
    /// A malformed fault script or recovery policy, normalized to one
    /// variant regardless of which substrate rejected it.
    Fault(wrht_kernel::FaultError),
}

impl fmt::Display for WrhtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrhtError::GroupSizeTooSmall(m) => {
                write!(f, "group size must be >= 2, got {m}")
            }
            WrhtError::GroupSizeNeedsMoreWavelengths { m, wavelengths } => write!(
                f,
                "group size {m} needs {} wavelengths but only {wavelengths} available",
                m / 2
            ),
            WrhtError::NoNodes => write!(f, "deployment has no nodes"),
            WrhtError::NoFeasiblePlan { n, wavelengths } => write!(
                f,
                "no feasible Wrht plan for n={n} with {wavelengths} wavelengths"
            ),
            WrhtError::Optical(e) => write!(f, "optical substrate error: {e}"),
            WrhtError::Electrical(e) => write!(f, "electrical substrate error: {e}"),
            WrhtError::Fault(e) => write!(f, "fault script: {e}"),
        }
    }
}

impl std::error::Error for WrhtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WrhtError::Optical(e) => Some(e),
            WrhtError::Electrical(e) => Some(e),
            WrhtError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OpticalError> for WrhtError {
    fn from(e: OpticalError) -> Self {
        match e {
            OpticalError::Fault(fe) => WrhtError::Fault(fe),
            other => WrhtError::Optical(other),
        }
    }
}

impl From<NetError> for WrhtError {
    fn from(e: NetError) -> Self {
        // Normalize fault-script rejections so callers can match one
        // variant whichever substrate validated the script.
        match e {
            NetError::Fault(fe) => WrhtError::Fault(fe),
            other => WrhtError::Electrical(other),
        }
    }
}

impl From<wrht_kernel::FaultError> for WrhtError {
    fn from(e: wrht_kernel::FaultError) -> Self {
        WrhtError::Fault(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WrhtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WrhtError::GroupSizeNeedsMoreWavelengths {
            m: 10,
            wavelengths: 2,
        };
        assert!(e.to_string().contains("group size 10"));
        let e: WrhtError = OpticalError::ZeroLanes.into();
        assert!(matches!(e, WrhtError::Optical(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: WrhtError = NetError::SelfFlow(3).into();
        assert!(matches!(e, WrhtError::Electrical(_)));
        assert!(e.to_string().contains("electrical substrate"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
