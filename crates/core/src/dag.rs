//! The dependency-aware schedule IR.
//!
//! A [`crate::substrate::Substrate`] executes a [`StepSchedule`] with
//! barrier semantics: every transfer of a step starts together and the
//! step ends at the slowest flow, so consecutive gradient buckets and
//! consecutive collective steps can never overlap on the wire. A
//! [`DepSchedule`] removes that barrier: each transfer carries explicit
//! predecessor edges and an optional release time, and
//! [`crate::substrate::Substrate::execute_dag`] runs it event-driven on
//! either fabric — flows start the instant their last predecessor
//! completes, wavelengths free as soon as a transfer finishes, and the
//! electrical fluid solver re-solves rates incrementally.
//!
//! Three lowerings are provided:
//!
//! * [`DepSchedule::from_steps`] — barrier edges (each transfer depends on
//!   the whole previous non-empty step). Executing this DAG reproduces
//!   [`crate::substrate::Substrate::execute`] **bit-exactly** on both
//!   substrates — the differential suite pins it.
//! * [`DepSchedule::pipelined_from_steps`] — per-node ordering edges: a
//!   transfer depends only on the previous transfers its *source node*
//!   took part in (it cannot forward data it has not received, and a node
//!   sends its steps in order), so steps of a collective pipeline
//!   back-to-back wherever links and wavelengths allow.
//! * [`DepSchedule::chain`] — per-bucket all-reduce chains: each bucket's
//!   schedule keeps its internal barrier edges, buckets share no edges,
//!   and a bucket's first transfers are gated on its gradient-ready time —
//!   so consecutive buckets overlap on the wire.
//!
//! ```
//! use wrht_core::dag::DepSchedule;
//! use wrht_core::baselines::oring_schedule;
//!
//! let sched = oring_schedule(8, 8_000, 4);
//! let barrier = DepSchedule::from_steps(&sched);
//! let pipelined = DepSchedule::pipelined_from_steps(&sched);
//! assert_eq!(barrier.len(), sched.transfer_count());
//! assert_eq!(pipelined.len(), sched.transfer_count());
//! // Barrier edges are a superset of the per-node ordering edges.
//! let edges = |d: &DepSchedule| d.transfers().iter().map(|t| t.deps.len()).sum::<usize>();
//! assert!(edges(&pipelined) <= edges(&barrier));
//! ```

use optical_sim::request::Transfer;
use optical_sim::sim::StepSchedule;
use serde::{Deserialize, Serialize};

/// How a schedule is executed on a substrate — the campaign axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// Step-synchronous: every step ends at its slowest transfer
    /// ([`crate::substrate::Substrate::execute`]).
    Barrier,
    /// Dependency-driven: transfers start the instant their predecessors
    /// complete ([`crate::substrate::Substrate::execute_dag`] over a
    /// [`DepSchedule::pipelined_from_steps`] / [`DepSchedule::chain`]
    /// lowering).
    Pipelined,
}

impl ExecMode {
    /// Stable lowercase label used in reports, hashes and CSV rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Barrier => "barrier",
            ExecMode::Pipelined => "pipelined",
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One transfer of a [`DepSchedule`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DepTransfer {
    /// The transfer itself (endpoints, payload, ring direction, lanes).
    pub transfer: Transfer,
    /// Indices of transfers that must complete before this one starts.
    /// Every index is `<` the transfer's own index, so the list is a DAG
    /// in topological order by construction.
    pub deps: Vec<usize>,
    /// Earliest start time, seconds (e.g. a gradient-ready instant);
    /// 0 for purely dependency-driven transfers.
    pub release_s: f64,
    /// The source step (or bucket-step) this transfer was lowered from.
    /// Non-decreasing along the schedule; used for barrier detection and
    /// per-stage reporting.
    pub stage: usize,
}

/// A dependency-aware communication schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DepSchedule {
    transfers: Vec<DepTransfer>,
    stages: usize,
}

/// Append `schedule` lowered with barrier edges (every transfer gated on
/// the whole previous non-empty step); dependency-free transfers are gated
/// on `release_s`. The single lowering shared by [`DepSchedule::from_steps`]
/// and [`DepSchedule::chain`].
fn push_barrier_bucket(
    transfers: &mut Vec<DepTransfer>,
    schedule: &StepSchedule,
    release_s: f64,
    stage_base: usize,
) {
    let mut prev: Vec<usize> = Vec::new();
    for (step_idx, step) in schedule.steps().iter().enumerate() {
        let first = transfers.len();
        for tr in step {
            transfers.push(DepTransfer {
                transfer: tr.clone(),
                deps: prev.clone(),
                release_s: if prev.is_empty() { release_s } else { 0.0 },
                stage: stage_base + step_idx,
            });
        }
        if !step.is_empty() {
            prev = (first..transfers.len()).collect();
        }
    }
}

impl DepSchedule {
    /// Build from explicit transfers, validating the DAG invariants:
    /// every dependency precedes its transfer, stages are non-decreasing,
    /// and release times are finite and non-negative.
    ///
    /// The two lowering constructors uphold these invariants by
    /// construction; this entry is for hand-built or deserialized DAGs.
    /// The substrates re-validate independently (they accept raw transfer
    /// lists at their own crate boundaries), so an invalid DAG fails
    /// cleanly either way.
    pub fn from_transfers(transfers: Vec<DepTransfer>) -> crate::error::Result<Self> {
        let mut stage = 0usize;
        for (i, t) in transfers.iter().enumerate() {
            if t.deps.iter().any(|&d| d >= i) {
                return Err(optical_sim::OpticalError::BadConfig(
                    "dependency must precede its transfer",
                )
                .into());
            }
            if t.stage < stage {
                return Err(
                    optical_sim::OpticalError::BadConfig("stages must be non-decreasing").into(),
                );
            }
            if !t.release_s.is_finite() || t.release_s < 0.0 {
                return Err(optical_sim::OpticalError::BadConfig(
                    "release time must be finite and >= 0",
                )
                .into());
            }
            stage = t.stage;
        }
        let stages = transfers.last().map_or(0, |t| t.stage + 1);
        Ok(Self { transfers, stages })
    }

    /// Lower a [`StepSchedule`] with **full barrier edges**: every
    /// transfer of step `k` depends on every transfer of the most recent
    /// non-empty step before `k`. Executing this DAG agrees bit-exactly
    /// with the stepped run on both substrates.
    #[must_use]
    pub fn from_steps(schedule: &StepSchedule) -> Self {
        let mut transfers: Vec<DepTransfer> = Vec::with_capacity(schedule.transfer_count());
        push_barrier_bucket(&mut transfers, schedule, 0.0, 0);
        Self {
            transfers,
            stages: schedule.len(),
        }
    }

    /// Lower a [`StepSchedule`] with **per-node ordering edges**: a
    /// transfer depends only on the most recent earlier transfers its
    /// source node took part in (as sender or receiver). This preserves
    /// the data flow of reduce/broadcast/ring collectives — a node cannot
    /// forward a buffer it has not received, and a node's own sends stay
    /// ordered — while letting independent branches of consecutive steps
    /// overlap on the wire.
    #[must_use]
    pub fn pipelined_from_steps(schedule: &StepSchedule) -> Self {
        let nodes = schedule
            .steps()
            .iter()
            .flatten()
            .map(|t| t.src.0.max(t.dst.0) + 1)
            .max()
            .unwrap_or(0);
        // For each node: the transfer indices of the most recent step in
        // which it appeared.
        let mut last_involved: Vec<Vec<usize>> = vec![Vec::new(); nodes];
        let mut transfers: Vec<DepTransfer> = Vec::with_capacity(schedule.transfer_count());
        for (stage, step) in schedule.steps().iter().enumerate() {
            let first = transfers.len();
            for tr in step {
                transfers.push(DepTransfer {
                    transfer: tr.clone(),
                    deps: last_involved[tr.src.0].clone(),
                    release_s: 0.0,
                    stage,
                });
            }
            if step.is_empty() {
                continue;
            }
            let mut involved: Vec<Vec<usize>> = vec![Vec::new(); nodes];
            for (k, tr) in step.iter().enumerate() {
                involved[tr.src.0].push(first + k);
                involved[tr.dst.0].push(first + k);
            }
            for (node, list) in involved.into_iter().enumerate() {
                if !list.is_empty() {
                    last_involved[node] = list;
                }
            }
        }
        Self {
            transfers,
            stages: schedule.len(),
        }
    }

    /// Chain per-bucket schedules: each bucket keeps internal barrier
    /// edges, its dependency-free transfers are gated on the bucket's
    /// release instant, and buckets share **no** edges — consecutive
    /// buckets pipeline back-to-back on the wire instead of serializing
    /// behind a global network lock.
    ///
    /// Returns the combined schedule plus each bucket's transfer range.
    #[must_use]
    pub fn chain(buckets: &[(f64, StepSchedule)]) -> (Self, Vec<std::ops::Range<usize>>) {
        let mut transfers: Vec<DepTransfer> = Vec::new();
        let mut ranges = Vec::with_capacity(buckets.len());
        let mut stage_base = 0usize;
        for (release_s, schedule) in buckets {
            let bucket_first = transfers.len();
            push_barrier_bucket(&mut transfers, schedule, *release_s, stage_base);
            stage_base += schedule.len();
            ranges.push(bucket_first..transfers.len());
        }
        (
            Self {
                transfers,
                stages: stage_base,
            },
            ranges,
        )
    }

    /// Build a schedule of **independent** transfers, each released at its
    /// own instant with no dependency edges — the shape of background
    /// traffic (incast floods, permutation storms) injected next to a
    /// structured job in a multi-tenant run.
    #[must_use]
    pub fn from_released(released: &[(f64, Transfer)]) -> Self {
        let transfers = released
            .iter()
            .map(|(release_s, tr)| DepTransfer {
                transfer: tr.clone(),
                deps: Vec::new(),
                release_s: release_s.max(0.0),
                stage: 0,
            })
            .collect();
        Self {
            transfers,
            stages: usize::from(!released.is_empty()),
        }
    }

    /// The transfers in topological order.
    #[must_use]
    pub fn transfers(&self) -> &[DepTransfer] {
        &self.transfers
    }

    /// Number of transfers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    /// True when the schedule has no transfers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// Number of source stages (steps / bucket-steps) the schedule was
    /// lowered from.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages
    }

    /// Total payload bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.transfer.bytes).sum()
    }

    /// Total dependency edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.transfers.iter().map(|t| t.deps.len()).sum()
    }

    /// Does this DAG encode full step barriers? True iff every release is
    /// 0 and every transfer depends on exactly the whole previous
    /// non-empty stage — the shape produced by [`DepSchedule::from_steps`].
    /// Substrates pin `execute_dag == execute` bit-exactly on such DAGs.
    #[must_use]
    pub fn is_barrier_shaped(&self) -> bool {
        // wrht-analyze: allow(r6, reason = "exact-zero sentinel: from_steps writes the literal 0.0, never a computed value")
        if self.transfers.iter().any(|t| t.release_s != 0.0) {
            return false;
        }
        let mut prev: Vec<usize> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        let mut stage = usize::MAX;
        for (i, t) in self.transfers.iter().enumerate() {
            if t.stage != stage {
                if !current.is_empty() {
                    prev = std::mem::take(&mut current);
                }
                current.clear();
                stage = t.stage;
            }
            if t.deps != prev {
                return false;
            }
            current.push(i);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optical_sim::NodeId;

    fn t(src: usize, dst: usize, bytes: u64) -> Transfer {
        Transfer::shortest(NodeId(src), NodeId(dst), bytes)
    }

    #[test]
    fn barrier_lowering_spans_empty_steps() {
        let sched = StepSchedule::from_steps(vec![
            vec![t(0, 1, 10), t(2, 3, 20)],
            vec![],
            vec![t(1, 2, 30)],
        ]);
        let dag = DepSchedule::from_steps(&sched);
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.stage_count(), 3);
        assert_eq!(dag.transfers()[0].deps, Vec::<usize>::new());
        assert_eq!(dag.transfers()[1].deps, Vec::<usize>::new());
        // The step after the empty one depends on the last non-empty step.
        assert_eq!(dag.transfers()[2].deps, vec![0, 1]);
        assert_eq!(dag.transfers()[2].stage, 2);
        assert!(dag.is_barrier_shaped());
        assert_eq!(dag.total_bytes(), 60);
    }

    #[test]
    fn pipelined_lowering_tracks_node_involvement() {
        // Step 0: 0->1 and 2->3. Step 1: 1->2 (depends on both: node 1
        // received from 0... only transfer 0 involves node 1) and 3->0.
        let sched = StepSchedule::from_steps(vec![
            vec![t(0, 1, 10), t(2, 3, 20)],
            vec![t(1, 2, 30), t(3, 0, 40)],
        ]);
        let dag = DepSchedule::pipelined_from_steps(&sched);
        assert_eq!(dag.transfers()[2].deps, vec![0]); // 1 took part in 0->1
        assert_eq!(dag.transfers()[3].deps, vec![1]); // 3 took part in 2->3
        assert!(!dag.is_barrier_shaped());
        assert!(dag.edge_count() < DepSchedule::from_steps(&sched).edge_count());
    }

    #[test]
    fn pipelined_lowering_reaches_across_idle_steps() {
        // Node 0 sends in step 0, is idle in step 1, sends again in step 2:
        // the step-2 send must still depend on its step-0 transfer.
        let sched = StepSchedule::from_steps(vec![
            vec![t(0, 1, 10)],
            vec![t(2, 3, 20)],
            vec![t(0, 3, 30)],
        ]);
        let dag = DepSchedule::pipelined_from_steps(&sched);
        assert_eq!(dag.transfers()[2].deps, vec![0]);
    }

    #[test]
    fn chain_gates_buckets_on_release_and_shares_no_edges() {
        let bucket = StepSchedule::from_steps(vec![vec![t(0, 1, 10)], vec![t(1, 2, 20)]]);
        let (dag, ranges) = DepSchedule::chain(&[(1e-3, bucket.clone()), (2e-3, bucket)]);
        assert_eq!(dag.len(), 4);
        assert_eq!(ranges, vec![0..2, 2..4]);
        assert_eq!(dag.transfers()[0].release_s, 1e-3);
        assert_eq!(dag.transfers()[1].deps, vec![0]);
        assert_eq!(dag.transfers()[1].release_s, 0.0);
        // Second bucket: gated on its own release, no cross-bucket edges.
        assert_eq!(dag.transfers()[2].release_s, 2e-3);
        assert_eq!(dag.transfers()[2].deps, Vec::<usize>::new());
        assert_eq!(dag.transfers()[3].deps, vec![2]);
        assert_eq!(dag.stage_count(), 4);
        assert!(!dag.is_barrier_shaped());
    }

    #[test]
    fn from_transfers_validates_invariants() {
        let bad_dep = vec![DepTransfer {
            transfer: t(0, 1, 1),
            deps: vec![0],
            release_s: 0.0,
            stage: 0,
        }];
        assert!(DepSchedule::from_transfers(bad_dep).is_err());
        let bad_stage = vec![
            DepTransfer {
                transfer: t(0, 1, 1),
                deps: vec![],
                release_s: 0.0,
                stage: 1,
            },
            DepTransfer {
                transfer: t(1, 2, 1),
                deps: vec![],
                release_s: 0.0,
                stage: 0,
            },
        ];
        assert!(DepSchedule::from_transfers(bad_stage).is_err());
        let bad_release = vec![DepTransfer {
            transfer: t(0, 1, 1),
            deps: vec![],
            release_s: f64::NAN,
            stage: 0,
        }];
        assert!(DepSchedule::from_transfers(bad_release).is_err());
    }

    #[test]
    fn exec_mode_labels() {
        assert_eq!(ExecMode::Barrier.label(), "barrier");
        assert_eq!(ExecMode::Pipelined.to_string(), "pipelined");
    }

    #[test]
    fn empty_schedule_is_barrier_shaped() {
        let dag = DepSchedule::default();
        assert!(dag.is_empty());
        assert!(dag.is_barrier_shaped());
        assert_eq!(dag.edge_count(), 0);
    }
}
