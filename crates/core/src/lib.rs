//! # wrht-core — Wavelength Reused Hierarchical Tree all-reduce
//!
//! The primary contribution of the reproduced paper (Dai et al., PPoPP'23):
//! an all-reduce schedule for WDM optical ring interconnects that minimizes
//! communication steps by collecting data over a **hierarchical tree** whose
//! groups reuse wavelengths on link-disjoint ring arcs.
//!
//! ## Scheme
//!
//! * **Reduce stage** — the `N` ring nodes are partitioned into contiguous
//!   groups of `m`; the middle node of each group (the *representative*)
//!   receives every other member's buffer in one step. The two sides of a
//!   group transmit in opposite ring directions; one side's paths are
//!   nested, so `⌊m/2⌋` wavelengths suffice, and different groups share no
//!   link, so wavelengths are *reused* across groups. Representatives
//!   recurse until the survivors can finish with a single **all-to-all**
//!   step (feasible when `⌈m*²/8⌉ ≤ w` wavelengths cover the Liang–Shen
//!   all-to-all requirement).
//! * **Broadcast stage** — the mirror image: representatives push the
//!   reduced buffer back down the tree.
//!
//! Total steps: `2⌈log_m N⌉` or `2⌈log_m N⌉ − 1` ([`steps`]).
//!
//! ## Crate layout
//!
//! * [`plan`] — group/representative tree construction;
//! * [`steps`] — the paper's step-count and wavelength-requirement laws;
//! * [`alltoall`] — the final all-to-all step and its RWA feasibility check;
//! * [`lower`] — lowering plans to [`optical_sim`] step schedules and to
//!   logical [`collectives`] schedules (for correctness verification);
//! * [`cost`] — the analytic communication-time model;
//! * [`optimizer`] — group-size selection (`m`) minimizing predicted time;
//! * [`baselines`] — O-Ring (ring all-reduce over the optical ring) and a
//!   generic collectives→optical lowering;
//! * [`substrate`] — the unified [`substrate::Substrate`] execution trait
//!   over the optical ring and the electrical fluid-model cluster;
//! * [`dag`] — the dependency-aware [`dag::DepSchedule`] IR and its
//!   barrier/pipelined lowerings, executed event-driven by
//!   [`substrate::Substrate::execute_dag`];
//! * [`timeline`] — simulator-backed training iterations: per-bucket
//!   all-reduces executed on a substrate and merged with gradient-ready
//!   times into an [`timeline::IterationTimeline`];
//! * [`tenancy`] — multi-job tenancy: concurrent jobs composed into one
//!   shared DAG run ([`substrate::Substrate::execute_jobs`]) under a
//!   [`tenancy::SchedPolicy`], priced per tenant in a
//!   [`tenancy::ClusterReport`];
//! * [`fault`] — fault and degradation dynamics: typed
//!   [`fault::FaultScript`] events executed through the shared kernel
//!   under a recovery [`fault::FaultPolicy`], with per-job blast radius
//!   and recovery time in a [`fault::FaultClusterReport`]
//!   ([`substrate::Substrate::execute_jobs_faulted`]);
//! * [`stream`] — the open-loop cluster service: arrival streams
//!   ([`stream::ArrivalProcess`]) admitted into the *running* engines
//!   ([`substrate::Substrate::execute_stream`]), windowed metrics with
//!   bounded memory, and versioned checkpoint/resume
//!   ([`stream::StreamCheckpoint`]);
//! * [`hierarchy`] — hierarchical composed substrates: per-group intra
//!   fabrics (optical grant loop) plus an inter-group fabric (incremental
//!   max-min engine) executing one domain-tagged [`dag::DepSchedule`] in a
//!   single event loop ([`hierarchy::ComposedSubstrate`]), with
//!   single-group specs collapsing bit-exactly to flat runs;
//! * [`parallelism`] — the mixed-parallelism IR
//!   ([`parallelism::ParallelismSpec`]: TP × PP × DP × MoE) lowering
//!   transformer stage models to one hierarchical traffic DAG;
//! * [`quantile`] — streaming P² percentile estimation shared by the
//!   closed and open-loop reports.
//!
//! ```
//! use wrht_core::prelude::*;
//! use optical_sim::OpticalConfig;
//!
//! let cfg = OpticalConfig::paper_defaults(64);
//! let params = WrhtParams::auto(64, 64);
//! let outcome = plan_and_simulate(&params, &cfg, 1 << 20).unwrap();
//! assert!(outcome.simulated_time_s > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alltoall;
pub mod baselines;
pub mod cost;
pub mod dag;
pub mod describe;
pub mod error;
pub mod fault;
pub mod hierarchy;

/// The shared discrete-event kernel both substrate simulators run on.
///
/// Re-exported from the standalone `wrht-kernel` crate so downstream users
/// (campaign drivers, custom substrates) can schedule against the same
/// clock/queue semantics — monotonic [`kernel::SimClock`], typed
/// [`kernel::KernelError`] for backwards scheduling, stable FIFO
/// tie-breaking and bit-equality same-instant batching — without depending
/// on either simulator crate.
pub mod kernel {
    pub use wrht_kernel::{EventId, EventKernel, KernelError, SimClock, Slab, SlabKey};
}
pub mod lower;
pub mod optimizer;
pub mod parallelism;
pub mod params;
pub mod pipeline;
pub mod plan;
pub mod quantile;
pub mod steps;
pub mod stream;
pub mod substrate;
pub mod tenancy;
pub mod timeline;

/// Common re-exports.
pub mod prelude {
    pub use crate::baselines::{lower_collective_to_optical, oring_schedule};
    pub use crate::cost::{predict_time_s, CostBreakdown};
    pub use crate::dag::{DepSchedule, DepTransfer, ExecMode};
    pub use crate::describe::describe_plan;
    pub use crate::error::WrhtError;
    pub use crate::fault::{
        FaultClusterReport, FaultError, FaultEvent, FaultKind, FaultPolicy, FaultRunReport,
        FaultScript, FaultTiming, JobBlastRadius,
    };
    pub use crate::hierarchy::{ComposedSubstrate, Domain, FabricSpec, HierSpec};
    pub use crate::lower::{
        to_logical_schedule, to_optical_schedule, to_optical_schedule_with, BroadcastMode,
    };
    pub use crate::optimizer::{choose_group_size, plan_and_simulate, PlanOutcome};
    pub use crate::parallelism::{lower_parallelism, ParallelismSpec, StageModel};
    pub use crate::params::{GroupSize, WrhtParams};
    pub use crate::pipeline::{optimal_segments, segment_sweep, segmented_time, SegmentPoint};
    pub use crate::plan::{
        build_plan, build_plan_over, candidate_plans, candidate_plans_over, Group, Level,
        StopPolicy, WrhtPlan,
    };
    pub use crate::quantile::{exact_percentiles, P2Quantile, PercentileSet, Percentiles};
    pub use crate::steps::{paper_step_count, tree_wavelength_requirement};
    pub use crate::stream::{
        Admission, ArrivalProcess, StreamCheckpoint, StreamJobReport, StreamOutcome, StreamReport,
        StreamSpec, StreamTemplate, WindowedReport, STREAM_CHECKPOINT_VERSION,
    };
    pub use crate::substrate::{
        DagRunReport, DagTiming, ElectricalSubstrate, OpticalSubstrate, RunReport, StepTiming,
        Substrate,
    };
    pub use crate::tenancy::{
        ClusterReport, Job, JobId, JobReport, JobWorkload, SchedPolicy, TenancySpec,
    };
    pub use crate::timeline::{
        execute_timeline, execute_timeline_pipelined, BucketTimeline, IterationTimeline,
        TimelineBucket,
    };
}

pub use dag::{DepSchedule, DepTransfer, ExecMode};
pub use error::WrhtError;
pub use fault::{FaultClusterReport, FaultPolicy, FaultRunReport, FaultScript};
pub use hierarchy::{ComposedSubstrate, Domain, FabricSpec, HierSpec};
pub use optimizer::{choose_group_size, plan_and_simulate, PlanOutcome};
pub use parallelism::{lower_parallelism, ParallelismSpec, StageModel};
pub use params::{GroupSize, WrhtParams};
pub use plan::{build_plan, candidate_plans, StopPolicy, WrhtPlan};
pub use quantile::{PercentileSet, Percentiles};
pub use stream::{
    Admission, ArrivalProcess, StreamCheckpoint, StreamOutcome, StreamReport, StreamSpec,
    StreamTemplate, WindowedReport,
};
pub use substrate::{DagRunReport, ElectricalSubstrate, OpticalSubstrate, RunReport, Substrate};
pub use tenancy::{ClusterReport, Job, JobId, JobReport, SchedPolicy, TenancySpec};
pub use timeline::{
    execute_timeline, execute_timeline_pipelined, IterationTimeline, TimelineBucket,
};
