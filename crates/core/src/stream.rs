//! Open-loop cluster service: arrival streams, windowed metrics and
//! checkpoint/resume.
//!
//! The closed-set tenancy path ([`crate::substrate::Substrate::execute_jobs`])
//! answers "what happens when these K jobs share the fabric" — every job is
//! known up front. A production cluster instead faces an **open-loop arrival
//! stream**: jobs arrive over time (Poisson, traced, bursty), an admission
//! policy decides whether each runs now, queues or is turned away, and
//! operators read *windowed* service metrics rather than one end-of-run
//! report. This module provides that service loop on both substrates:
//!
//! * [`ArrivalProcess`] — deterministic arrival-time generators (Poisson
//!   via an inverse-CDF over a splitmix64 stream, explicit traces, bursts);
//! * [`Admission`] — immediate admission, bounded-concurrency queueing, or
//!   load shedding, layered on the existing [`SchedPolicy`] arbitration;
//! * [`StreamSpec`] → [`Substrate::execute_stream`] — arriving jobs'
//!   transfers are injected into the **running** engines
//!   ([`optical_sim::GrantEngine`], [`electrical_sim::FluidEngine`]) — the
//!   same engines the closed path drives, so a stream whose arrivals are
//!   all known up front is bit-exact with [`Substrate::execute_jobs`];
//! * [`WindowedReport`] — per-window arrival/completion counts,
//!   utilization, slowdown percentiles (streaming P², see
//!   [`crate::quantile`]) and Jain fairness, computed online with bounded
//!   memory: a million-arrival run never materializes per-job reports
//!   unless [`StreamSpec::retain_jobs`] asks for them;
//! * [`StreamCheckpoint`] — a versioned snapshot of the engine (kernel
//!   events, clock, slots) plus the service state (generator, queue,
//!   aggregates). Resuming is **byte-identical** to the uninterrupted run.
//!
//! # Determinism contract
//!
//! The driver injects every arrival whose instant is at or before the
//! engine's next event time (plus the substrate's coincidence tolerance)
//! *before* stepping, and arrivals are nondecreasing, so an un-injected
//! arrival can never fall inside a batch the engine is about to process.
//! Promotion instants, grant decisions and event counts therefore match the
//! closed path exactly — pinned by the differential tests below and in
//! `tests/stream_differential.rs`.
//!
//! ```
//! use wrht_core::stream::{ArrivalProcess, StreamSpec, StreamTemplate};
//! use wrht_core::substrate::{OpticalSubstrate, Substrate};
//! use wrht_core::tenancy::{JobWorkload, SchedPolicy};
//! use optical_sim::sim::StepSchedule;
//! use optical_sim::{NodeId, OpticalConfig, Transfer};
//!
//! let sched = StepSchedule::from_steps(vec![vec![Transfer::shortest(
//!     NodeId(0), NodeId(1), 1 << 20,
//! )]]);
//! let spec = StreamSpec::new(
//!     ArrivalProcess::Poisson { rate_hz: 2e3, count: 32, seed: 7 },
//!     SchedPolicy::Fifo,
//! )
//! .with_template(StreamTemplate::new("job", JobWorkload::Steps(sched)));
//! let mut sub = OpticalSubstrate::new(OpticalConfig::new(8, 4)).unwrap();
//! let report = sub.execute_stream(&spec).unwrap();
//! assert_eq!(report.completed, 32);
//! ```

use serde::{Deserialize, Serialize, Value};

use crate::dag::DepSchedule;
use crate::error::Result;
use crate::quantile::{PercentileSet, Percentiles};
use crate::substrate::{ElectricalSubstrate, OpticalSubstrate, Substrate};
use crate::tenancy::{JobWorkload, SchedPolicy};
use electrical_sim::{EngineFlow, FluidEngine, FluidEngineSnapshot, Network};
use optical_sim::{GrantCompletion, GrantEngine, GrantEngineSnapshot, GrantTransfer, OpticalError};

/// Version tag of [`StreamCheckpoint`]; bump on any layout change.
pub const STREAM_CHECKPOINT_VERSION: u32 = 1;

fn cfg_err(msg: &'static str) -> crate::error::WrhtError {
    OpticalError::BadConfig(msg).into()
}

// ---------------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------------

/// A deterministic generator of nondecreasing job-arrival instants.
///
/// Every process produces a **finite** stream (campaigns and tests need
/// closed runs); arrivals are generated lazily one at a time, so the
/// generator state is a few words regardless of the stream length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival times at `rate_hz` jobs/second, drawn by
    /// inverse-CDF from a splitmix64 stream seeded with `seed`. Exactly
    /// `count` arrivals.
    Poisson {
        /// Mean arrival rate, jobs per second (finite, > 0).
        rate_hz: f64,
        /// Number of arrivals to generate.
        count: u64,
        /// RNG seed; equal seeds replay the identical stream.
        seed: u64,
    },
    /// An explicit, nondecreasing list of arrival instants (seconds).
    Trace {
        /// The arrival instants; must be finite, >= 0 and nondecreasing.
        arrivals_s: Vec<f64>,
    },
    /// `bursts` bursts of `size` simultaneous arrivals, `period_s` apart
    /// (burst `k` arrives at `k * period_s`).
    Burst {
        /// Number of bursts.
        bursts: u64,
        /// Arrivals per burst (>= 1).
        size: u64,
        /// Inter-burst period, seconds (finite, >= 0).
        period_s: f64,
    },
}

impl ArrivalProcess {
    /// Total number of arrivals the process will generate.
    #[must_use]
    pub fn count(&self) -> u64 {
        match self {
            ArrivalProcess::Poisson { count, .. } => *count,
            ArrivalProcess::Trace { arrivals_s } => arrivals_s.len() as u64,
            ArrivalProcess::Burst { bursts, size, .. } => bursts.saturating_mul(*size),
        }
    }

    /// Stable lowercase kind label used in campaign rows.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Trace { .. } => "trace",
            ArrivalProcess::Burst { .. } => "burst",
        }
    }

    fn validate(&self) -> Result<()> {
        match self {
            ArrivalProcess::Poisson { rate_hz, .. } => {
                if !rate_hz.is_finite() || *rate_hz <= 0.0 {
                    return Err(cfg_err("arrival rate must be finite and > 0"));
                }
            }
            ArrivalProcess::Trace { arrivals_s } => {
                let mut prev = 0.0f64;
                for &a in arrivals_s {
                    if !a.is_finite() || a < 0.0 {
                        return Err(cfg_err("trace arrivals must be finite and >= 0"));
                    }
                    if a < prev {
                        return Err(cfg_err("trace arrivals must be nondecreasing"));
                    }
                    prev = a;
                }
            }
            ArrivalProcess::Burst { size, period_s, .. } => {
                if *size == 0 {
                    return Err(cfg_err("burst size must be >= 1"));
                }
                if !period_s.is_finite() || *period_s < 0.0 {
                    return Err(cfg_err("burst period must be finite and >= 0"));
                }
            }
        }
        Ok(())
    }

    /// Generate the next arrival instant, advancing `gen`. `None` when the
    /// stream is exhausted.
    fn next(&self, gen: &mut GenState) -> Option<f64> {
        match self {
            ArrivalProcess::Poisson { rate_hz, count, .. } => {
                if gen.idx >= *count {
                    return None;
                }
                let z = splitmix64(&mut gen.rng);
                // u in (0, 1]; -ln(u) is the exponential inverse-CDF.
                let u = ((z >> 11) + 1) as f64 / (1u64 << 53) as f64;
                gen.clock_s += -u.ln() / rate_hz;
                gen.idx += 1;
                Some(gen.clock_s)
            }
            ArrivalProcess::Trace { arrivals_s } => {
                let t = *arrivals_s.get(usize::try_from(gen.idx).ok()?)?;
                gen.idx += 1;
                Some(t)
            }
            ArrivalProcess::Burst {
                bursts,
                size,
                period_s,
            } => {
                if gen.idx >= bursts.saturating_mul(*size) {
                    return None;
                }
                let t = (gen.idx / size) as f64 * period_s;
                gen.idx += 1;
                Some(t)
            }
        }
    }

    fn fresh_gen(&self) -> GenState {
        GenState {
            idx: 0,
            clock_s: 0.0,
            rng: match self {
                ArrivalProcess::Poisson { seed, .. } => *seed,
                _ => 0,
            },
        }
    }
}

/// Arrival-generator cursor; part of the checkpointed service state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GenState {
    /// Arrivals generated so far.
    idx: u64,
    /// Running clock of the Poisson process, seconds.
    clock_s: f64,
    /// splitmix64 state (the seed before the first draw).
    rng: u64,
}

/// One step of the splitmix64 generator (Steele et al.) — a full-period
/// 64-bit mixer, the standard seeding primitive.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// What happens to a job the instant it arrives.
///
/// Admission is orthogonal to [`SchedPolicy`]: the policy arbitrates jobs
/// *inside* the fabric, admission decides how many get in at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// Every arrival enters the fabric immediately (the closed-set
    /// semantics — [`Substrate::execute_jobs`] with pre-known arrivals is
    /// bit-exact with a stream under this mode).
    Immediate,
    /// At most `limit` jobs run concurrently; excess arrivals wait in a
    /// FIFO queue and are admitted as completions free capacity.
    QueueDepth {
        /// Maximum concurrently running jobs (>= 1).
        limit: usize,
    },
    /// At most `limit` jobs run concurrently; excess arrivals are dropped
    /// (counted as rejected, never executed).
    Reject {
        /// Maximum concurrently running jobs (>= 1).
        limit: usize,
    },
}

impl Admission {
    /// Stable label used in reports, hashes and CSV rows.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Admission::Immediate => "immediate".into(),
            Admission::QueueDepth { limit } => format!("queue:{limit}"),
            Admission::Reject { limit } => format!("reject:{limit}"),
        }
    }

    fn validate(self) -> Result<()> {
        match self {
            Admission::Immediate => Ok(()),
            Admission::QueueDepth { limit } | Admission::Reject { limit } => {
                if limit == 0 {
                    Err(cfg_err("admission limit must be >= 1"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stream specification
// ---------------------------------------------------------------------------

/// A job template instantiated by arrivals (round-robin over the spec's
/// template list: arrival `i` runs template `i % templates.len()`).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamTemplate {
    /// Display name (carried into retained job reports via the template
    /// index).
    pub name: String,
    /// Scheduling priority under [`SchedPolicy::Priority`] — higher wins.
    pub priority: u32,
    /// The communication workload each instance executes (releases
    /// relative to the job's admission instant, exactly like
    /// [`crate::tenancy::Job::arrival_s`] offsets in the closed path).
    pub workload: JobWorkload,
}

impl StreamTemplate {
    /// A template with default (0) priority.
    #[must_use]
    pub fn new(name: impl Into<String>, workload: JobWorkload) -> Self {
        Self {
            name: name.into(),
            priority: 0,
            workload,
        }
    }

    /// Set the scheduling priority (builder style).
    #[must_use]
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }
}

/// An open-loop service workload: an arrival process over job templates,
/// an admission policy, and the windowed-metrics configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSpec {
    /// The arrival-time generator.
    pub arrivals: ArrivalProcess,
    /// Job templates, assigned round-robin by arrival index (>= 1).
    pub templates: Vec<StreamTemplate>,
    /// Cross-job scheduling policy inside the fabric.
    pub policy: SchedPolicy,
    /// Admission control at the service edge.
    pub admission: Admission,
    /// Metric window length, seconds (finite, > 0). Windows with no
    /// activity are elided from the report (their indices simply skip).
    pub window_s: f64,
    /// Reference capacity for utilization, bytes/second (finite, >= 0;
    /// 0 disables utilization). E.g. `wavelengths * lambda_bps` for the
    /// optical ring.
    pub reference_bps: f64,
    /// Keep a per-job [`StreamJobReport`] for every completion. Off by
    /// default — the memory-bounded mode for million-arrival runs.
    pub retain_jobs: bool,
}

impl StreamSpec {
    /// A spec with immediate admission, 1 ms windows and no retained jobs.
    #[must_use]
    pub fn new(arrivals: ArrivalProcess, policy: SchedPolicy) -> Self {
        Self {
            arrivals,
            templates: Vec::new(),
            policy,
            admission: Admission::Immediate,
            window_s: 1e-3,
            reference_bps: 0.0,
            retain_jobs: false,
        }
    }

    /// Append a job template (builder style).
    #[must_use]
    pub fn with_template(mut self, template: StreamTemplate) -> Self {
        self.templates.push(template);
        self
    }

    /// Set the admission policy (builder style).
    #[must_use]
    pub fn with_admission(mut self, admission: Admission) -> Self {
        self.admission = admission;
        self
    }

    /// Set the metric window length (builder style).
    #[must_use]
    pub fn with_window(mut self, window_s: f64) -> Self {
        self.window_s = window_s;
        self
    }

    /// Set the utilization reference capacity (builder style).
    #[must_use]
    pub fn with_reference_bps(mut self, reference_bps: f64) -> Self {
        self.reference_bps = reference_bps;
        self
    }

    /// Retain per-job reports (builder style).
    #[must_use]
    pub fn with_retained_jobs(mut self, retain: bool) -> Self {
        self.retain_jobs = retain;
        self
    }

    fn validate(&self) -> Result<()> {
        self.arrivals.validate()?;
        self.admission.validate()?;
        if self.templates.is_empty() {
            return Err(cfg_err("stream spec needs at least one job template"));
        }
        if !self.window_s.is_finite() || self.window_s <= 0.0 {
            return Err(cfg_err("metric window must be finite and > 0"));
        }
        if !self.reference_bps.is_finite() || self.reference_bps < 0.0 {
            return Err(cfg_err("reference capacity must be finite and >= 0"));
        }
        Ok(())
    }

    fn template_of(&self, arrival_idx: u64) -> usize {
        (arrival_idx % self.templates.len() as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// Service metrics over one time window. Only windows with activity are
/// reported; `index` identifies the absolute window so gaps are explicit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedReport {
    /// Absolute window index (`floor(t / window_s)`).
    pub index: u64,
    /// Window start, seconds.
    pub start_s: f64,
    /// Window end, seconds.
    pub end_s: f64,
    /// Jobs that arrived in the window.
    pub arrivals: u64,
    /// Jobs admitted into the fabric in the window (includes jobs admitted
    /// from the queue).
    pub admitted: u64,
    /// Jobs rejected in the window.
    pub rejected: u64,
    /// Jobs that completed in the window.
    pub completed: u64,
    /// Payload bytes of jobs completed in the window (credited at
    /// completion).
    pub bytes: f64,
    /// `bytes / (reference_bps * window_s)`; 0 when no reference is set.
    pub utilization: f64,
    /// Slowdown percentiles over the window's completions (streaming P²).
    pub slowdown: Percentiles,
    /// Jain fairness index over the window's completion slowdowns.
    pub fairness_index: f64,
    /// Admission-queue depth at the instant the window closed.
    pub queue_depth: usize,
    /// Concurrently running jobs at the instant the window closed.
    pub in_service: usize,
}

/// Per-job outcome retained when [`StreamSpec::retain_jobs`] is set,
/// in completion order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamJobReport {
    /// The job's arrival index (0-based, stream order).
    pub job: u64,
    /// Template index the job instantiated.
    pub template: usize,
    /// Arrival instant, seconds.
    pub arrival_s: f64,
    /// Admission instant (equals `arrival_s` unless the job queued).
    pub admit_s: f64,
    /// First transfer grant instant (admission instant for empty jobs).
    pub start_s: f64,
    /// Last transfer completion instant.
    pub finish_s: f64,
    /// `finish_s - arrival_s` (queueing delay included).
    pub makespan_s: f64,
    /// Makespan over the template's isolated makespan (1.0 when the
    /// template is empty).
    pub slowdown: f64,
}

/// End-of-run report of an open-loop stream execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamReport {
    /// Name of the substrate that executed the stream.
    pub substrate: String,
    /// The scheduling policy in force.
    pub policy: SchedPolicy,
    /// The admission policy in force.
    pub admission: Admission,
    /// Jobs that arrived.
    pub arrivals: u64,
    /// Jobs admitted into the fabric.
    pub admitted: u64,
    /// Jobs rejected at the edge.
    pub rejected: u64,
    /// Jobs that ran to completion (`admitted` for closed runs).
    pub completed: u64,
    /// Completion instant of the last job, seconds (0 when nothing ran).
    pub makespan_s: f64,
    /// Discrete events processed by the shared event kernel.
    pub events: u64,
    /// `total bytes / (reference_bps * makespan_s)`; 0 without a reference.
    pub mean_utilization: f64,
    /// Slowdown percentiles over all completions (streaming P²).
    pub slowdown: Percentiles,
    /// Mean slowdown over all completions (1.0 when none completed).
    pub mean_slowdown: f64,
    /// Jain fairness index over all completion slowdowns.
    pub fairness_index: f64,
    /// Deepest the admission queue ever got.
    pub peak_queue_depth: usize,
    /// Most jobs ever running concurrently.
    pub peak_in_service: usize,
    /// Per-window metrics (windows without activity elided).
    pub windows: Vec<WindowedReport>,
    /// Per-job reports in completion order (empty unless
    /// [`StreamSpec::retain_jobs`]).
    pub jobs: Vec<StreamJobReport>,
}

/// Result of [`Substrate::execute_stream_until`]: the run either finished
/// or paused at the requested arrival count.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamOutcome {
    /// The stream ran to completion.
    Done(StreamReport),
    /// The stream paused; resume with [`Substrate::resume_stream`].
    Paused(Box<StreamCheckpoint>),
}

impl StreamOutcome {
    /// The finished report, if the stream completed.
    #[must_use]
    pub fn report(self) -> Option<StreamReport> {
        match self {
            StreamOutcome::Done(r) => Some(r),
            StreamOutcome::Paused(_) => None,
        }
    }

    /// The checkpoint, if the stream paused.
    #[must_use]
    pub fn checkpoint(self) -> Option<StreamCheckpoint> {
        match self {
            StreamOutcome::Done(_) => None,
            StreamOutcome::Paused(c) => Some(*c),
        }
    }
}

/// A versioned, serializable snapshot of a paused stream: the engine image
/// (kernel events, clock, transfer slots) plus the service state
/// (generator cursor, admission queue, live jobs, metric aggregates).
///
/// Resuming on an identically configured substrate with the identical spec
/// is **byte-identical** to the uninterrupted run. The snapshot layout is
/// pinned by [`STREAM_CHECKPOINT_VERSION`]; unknown versions are rejected
/// on resume rather than misread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    /// Layout version ([`STREAM_CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Substrate the snapshot was taken on; resume rejects mismatches.
    pub substrate: String,
    /// Arrivals generated before the pause (resume continues from here).
    pub arrivals_seen: u64,
    /// Template count of the originating spec (spec-mismatch guard).
    templates: usize,
    /// Scheduling policy of the originating spec (spec-mismatch guard).
    policy: SchedPolicy,
    /// Substrate-specific engine snapshot (opaque, versioned internally).
    engine: Value,
    /// The driver's service state.
    state: ServiceState,
}

// ---------------------------------------------------------------------------
// Service state (checkpointed)
// ---------------------------------------------------------------------------

/// A queued arrival awaiting admission ([`Admission::QueueDepth`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct QueuedJob {
    idx: u64,
    template: usize,
    arrival_s: f64,
}

/// A job currently inside the fabric, indexed by engine job slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LiveJob {
    idx: u64,
    template: usize,
    arrival_s: f64,
    admit_s: f64,
    /// Transfers still outstanding.
    remaining: usize,
    /// Earliest transfer grant seen so far (`None` before any completion —
    /// an `Option`, not NaN, so snapshots survive JSON round-trips).
    first_start: Option<f64>,
    /// Latest transfer completion seen so far.
    last_finish: f64,
}

/// Accumulator for the currently open metric window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct WindowAcc {
    arrivals: u64,
    admitted: u64,
    rejected: u64,
    completed: u64,
    bytes: f64,
    slow: PercentileSet,
    slow_sum: f64,
    slow_sq: f64,
}

/// Everything the driver tracks outside the engine. Serializable so
/// checkpoints capture the loop mid-flight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ServiceState {
    gen: GenState,
    /// Pre-fetched next arrival `(index, instant)` not yet dispatched.
    next_arrival: Option<(u64, f64)>,
    /// FIFO admission queue with a compacting head cursor (popping is O(1)
    /// without shifting; the backlog is compacted once the dead prefix
    /// dominates).
    queue: Vec<QueuedJob>,
    queue_head: usize,
    /// Live jobs by engine job slot (slots are reused, so this stays as
    /// small as the peak concurrency).
    live: Vec<Option<LiveJob>>,
    in_service: usize,
    arrivals: u64,
    admitted: u64,
    rejected: u64,
    completed: u64,
    total_bytes: f64,
    last_finish_s: f64,
    peak_queue_depth: usize,
    peak_in_service: usize,
    run_slow: PercentileSet,
    slow_sum: f64,
    slow_sq: f64,
    /// Index of the currently open window.
    window_index: u64,
    window: WindowAcc,
    windows: Vec<WindowedReport>,
    jobs: Vec<StreamJobReport>,
}

impl ServiceState {
    fn fresh(spec: &StreamSpec) -> Self {
        Self {
            gen: spec.arrivals.fresh_gen(),
            next_arrival: None,
            queue: Vec::new(),
            queue_head: 0,
            live: Vec::new(),
            in_service: 0,
            arrivals: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
            total_bytes: 0.0,
            last_finish_s: 0.0,
            peak_queue_depth: 0,
            peak_in_service: 0,
            run_slow: PercentileSet::new(),
            slow_sum: 0.0,
            slow_sq: 0.0,
            window_index: 0,
            window: WindowAcc::default(),
            windows: Vec::new(),
            jobs: Vec::new(),
        }
    }

    fn queue_depth(&self) -> usize {
        self.queue.len() - self.queue_head
    }

    /// Advance the open window to the one containing `t`, finalizing the
    /// previous one. Empty windows in between are elided, so sparse
    /// streams (a completion at `t = 10^9` with millisecond windows) cost
    /// one report, not a billion.
    fn roll(&mut self, t: f64, spec: &StreamSpec) {
        let target = if t <= 0.0 {
            0
        } else {
            (t / spec.window_s).floor() as u64
        };
        if target > self.window_index {
            self.flush_window(spec);
            self.window_index = target;
        }
    }

    /// Finalize the open window into a [`WindowedReport`] (skipped when
    /// nothing happened in it).
    fn flush_window(&mut self, spec: &StreamSpec) {
        let acc = std::mem::take(&mut self.window);
        if acc.arrivals + acc.admitted + acc.rejected + acc.completed == 0 {
            return;
        }
        let start_s = self.window_index as f64 * spec.window_s;
        self.windows.push(WindowedReport {
            index: self.window_index,
            start_s,
            end_s: start_s + spec.window_s,
            arrivals: acc.arrivals,
            admitted: acc.admitted,
            rejected: acc.rejected,
            completed: acc.completed,
            bytes: acc.bytes,
            utilization: if spec.reference_bps > 0.0 {
                acc.bytes / (spec.reference_bps * spec.window_s)
            } else {
                0.0
            },
            slowdown: acc.slow.summary(),
            fairness_index: jain_from_sums(acc.completed, acc.slow_sum, acc.slow_sq),
            queue_depth: self.queue_depth(),
            in_service: self.in_service,
        });
    }

    /// Account one finished job into the run and window aggregates.
    fn record_finish(&mut self, spec: &StreamSpec, lowered: &[LoweredTemplate], job: FinishedJob) {
        self.roll(job.finish_s, spec);
        let template = &lowered[job.template];
        let makespan_s = (job.finish_s - job.arrival_s).max(0.0);
        let slowdown = if template.isolated_s > 0.0 {
            makespan_s / template.isolated_s
        } else {
            1.0
        };
        self.completed += 1;
        self.total_bytes += template.bytes;
        if job.finish_s > self.last_finish_s {
            self.last_finish_s = job.finish_s;
        }
        self.run_slow.observe(slowdown);
        self.slow_sum += slowdown;
        self.slow_sq += slowdown * slowdown;
        self.window.completed += 1;
        self.window.bytes += template.bytes;
        self.window.slow.observe(slowdown);
        self.window.slow_sum += slowdown;
        self.window.slow_sq += slowdown * slowdown;
        if spec.retain_jobs {
            self.jobs.push(StreamJobReport {
                job: job.idx,
                template: job.template,
                arrival_s: job.arrival_s,
                admit_s: job.admit_s,
                start_s: job.start_s,
                finish_s: job.finish_s,
                makespan_s,
                slowdown,
            });
        }
    }
}

/// Arguments of [`ServiceState::record_finish`], bundled.
struct FinishedJob {
    idx: u64,
    template: usize,
    arrival_s: f64,
    admit_s: f64,
    start_s: f64,
    finish_s: f64,
}

/// Jain's index from running sums — the bounded-memory counterpart of
/// [`crate::tenancy::jain_index`], with the same conventions (1.0 for
/// empty or all-zero inputs).
fn jain_from_sums(n: u64, sum: f64, sq: f64) -> f64 {
    if n == 0 || sq <= 0.0 {
        1.0
    } else {
        (sum * sum) / (n as f64 * sq)
    }
}

/// The grant rank a streamed job registers with the engine. Only the
/// *relative* order of ranks matters to arbitration, and stream arrivals
/// are nondecreasing, so these reproduce the closed path's sorted-position
/// ranks exactly:
///
/// * FIFO / fair-share rank by arrival index (the closed path sorts by
///   arrival then index — the identity permutation here);
/// * priority packs descending priority above the arrival index, matching
///   the closed `(priority desc, arrival, index)` sort. Arrival indices
///   beyond 2^32 reuse low bits; the tie-break then falls back to engine
///   order keys, which preserve FIFO among equal ranks.
fn job_rank(policy: SchedPolicy, priority: u32, arrival_idx: u64) -> u64 {
    match policy {
        SchedPolicy::Fifo | SchedPolicy::FairShare => arrival_idx,
        SchedPolicy::Priority => {
            (u64::from(u32::MAX - priority) << 32) | (arrival_idx & 0xFFFF_FFFF)
        }
    }
}

/// A template lowered once per run: the DAG instances inject, its payload
/// and its isolated makespan (the slowdown denominator, computed on the
/// idle substrate exactly as the closed path does).
struct LoweredTemplate {
    dag: DepSchedule,
    bytes: f64,
    isolated_s: f64,
}

fn lower_templates<S: Substrate + ?Sized>(
    sub: &mut S,
    spec: &StreamSpec,
) -> Result<Vec<LoweredTemplate>> {
    let mut out = Vec::with_capacity(spec.templates.len());
    for template in &spec.templates {
        let dag = template.workload.lower();
        let isolated_s = if dag.is_empty() {
            0.0
        } else {
            sub.execute_dag(&dag)?.makespan_s
        };
        let bytes = dag
            .transfers()
            .iter()
            .map(|t| t.transfer.bytes as f64)
            .sum();
        out.push(LoweredTemplate {
            dag,
            bytes,
            isolated_s,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The engine abstraction both substrates drive through
// ---------------------------------------------------------------------------

/// One transfer completion surfaced to the driver.
struct EngineDone {
    slot: usize,
    start_s: f64,
    finish_s: f64,
}

/// The minimal streaming-engine surface the service driver needs; adapters
/// wrap [`GrantEngine`] and [`FluidEngine`].
trait StreamEngine {
    /// Coincidence tolerance added to the event horizon when deciding
    /// which arrivals to inject before the next step (the electrical
    /// engine promotes within [`electrical_sim::sim::EPS`]; the optical
    /// engine batches bit-identical instants only).
    fn admit_slack(&self) -> f64;
    /// Events processed so far (for the report).
    fn events(&self) -> u64;
    /// Instant of the next pending event (including releases of freshly
    /// injected, not-yet-stepped flows), if any.
    fn peek_time(&mut self) -> Option<f64>;
    /// Register a job slot with the given grant rank.
    fn add_job(&mut self, rank: u64) -> usize;
    /// Release a finished job's slot for reuse.
    fn retire_job(&mut self, slot: usize);
    /// Inject one job's DAG with every release offset by `offset_s`.
    fn inject_job(&mut self, dag: &DepSchedule, offset_s: f64, slot: usize) -> Result<()>;
    /// Process the next event instant.
    fn step(&mut self) -> Result<()>;
    /// Drain transfer completions recorded by previous steps.
    fn drain(&mut self, out: &mut Vec<EngineDone>);
    /// Surface the substrate's diagnostic when the stream drained with
    /// unfinished jobs (stuck lanes, unreachable flows).
    fn finish_check(&mut self) -> Result<()>;
    /// Serialized engine image for a [`StreamCheckpoint`].
    fn snapshot(&self) -> Value;
}

// -- optical adapter --------------------------------------------------------

struct OpticalStream {
    eng: GrantEngine,
    wavelengths: usize,
    scratch: Vec<GrantCompletion>,
}

impl OpticalStream {
    fn build(sub: &OpticalSubstrate, spec: &StreamSpec) -> Result<Self> {
        let eng = GrantEngine::new(
            sub.config(),
            sub.strategy(),
            true,
            spec.policy == SchedPolicy::FairShare,
        )?;
        Ok(Self {
            eng,
            wavelengths: sub.config().wavelengths,
            scratch: Vec::new(),
        })
    }

    fn restore(sub: &OpticalSubstrate, spec: &StreamSpec, image: &Value) -> Result<Self> {
        let snap = GrantEngineSnapshot::from_value(image)
            .map_err(|_| cfg_err("malformed stream checkpoint"))?;
        let eng = GrantEngine::restore(
            sub.config(),
            sub.strategy(),
            true,
            spec.policy == SchedPolicy::FairShare,
            &snap,
        )?;
        Ok(Self {
            eng,
            wavelengths: sub.config().wavelengths,
            scratch: Vec::new(),
        })
    }
}

impl StreamEngine for OpticalStream {
    fn admit_slack(&self) -> f64 {
        // The optical kernel batches bit-identical instants only; an
        // arrival strictly after the next event can never join its batch.
        0.0
    }

    fn events(&self) -> u64 {
        self.eng.events()
    }

    fn peek_time(&mut self) -> Option<f64> {
        self.eng.peek_time()
    }

    fn add_job(&mut self, rank: u64) -> usize {
        self.eng.add_job(rank)
    }

    fn retire_job(&mut self, slot: usize) {
        self.eng.retire_job(slot);
    }

    fn inject_job(&mut self, dag: &DepSchedule, offset_s: f64, slot: usize) -> Result<()> {
        let batch: Vec<GrantTransfer> = dag
            .transfers()
            .iter()
            .map(|t| GrantTransfer {
                transfer: t.transfer.clone(),
                // The identical float expression the closed compose() uses
                // (`arrival + release`), so grant instants match bit-exactly.
                release_s: offset_s + t.release_s,
                deps: t.deps.clone(),
                job: slot,
            })
            .collect();
        self.eng.inject(&batch)?;
        Ok(())
    }

    fn step(&mut self) -> Result<()> {
        self.eng.step();
        Ok(())
    }

    fn drain(&mut self, out: &mut Vec<EngineDone>) {
        self.scratch.clear();
        self.eng.drain_completions(&mut self.scratch);
        out.extend(self.scratch.iter().map(|c| EngineDone {
            slot: c.job,
            start_s: c.start_s,
            finish_s: c.finish_s,
        }));
    }

    fn finish_check(&mut self) -> Result<()> {
        if let Some(lanes) = self.eng.stuck_lanes() {
            // The same error value the closed path raises for a transfer
            // whose lane demand can never be granted.
            return Err(OpticalError::WavelengthsExhausted {
                available: self.wavelengths,
                requested: lanes,
                step: 0,
            }
            .into());
        }
        Ok(())
    }

    fn snapshot(&self) -> Value {
        self.eng.snapshot().to_value()
    }
}

// -- electrical adapter -----------------------------------------------------

/// Engine image plus the adapter's own slot bookkeeping (the fluid engine
/// has no job-slot table of its own, so the mapping rides along in the
/// checkpoint).
#[derive(Serialize, Deserialize)]
struct ElectricalStreamState {
    engine: FluidEngineSnapshot,
    flow_slot: Vec<usize>,
    free_slots: Vec<usize>,
    next_slot: usize,
    pending_release: Option<f64>,
}

struct ElectricalStream<'a> {
    eng: FluidEngine<'a>,
    overhead_s: f64,
    /// Owning job slot of every engine flow (engine flow indices are
    /// append-only).
    flow_slot: Vec<usize>,
    free_slots: Vec<usize>,
    next_slot: usize,
    /// Earliest release among flows injected since the last step. The
    /// fluid engine schedules release events lazily inside `step`, so the
    /// adapter carries this to keep `peek_time` truthful right after an
    /// injection.
    pending_release: Option<f64>,
    scratch: Vec<usize>,
}

impl<'a> ElectricalStream<'a> {
    fn build(net: &'a Network, overhead_s: f64) -> Self {
        Self {
            eng: FluidEngine::new(net),
            overhead_s,
            flow_slot: Vec::new(),
            free_slots: Vec::new(),
            next_slot: 0,
            pending_release: None,
            scratch: Vec::new(),
        }
    }

    fn restore(net: &'a Network, overhead_s: f64, image: &Value) -> Result<Self> {
        let state = ElectricalStreamState::from_value(image)
            .map_err(|_| cfg_err("malformed stream checkpoint"))?;
        let eng = FluidEngine::restore(net, &state.engine)?;
        Ok(Self {
            eng,
            overhead_s,
            flow_slot: state.flow_slot,
            free_slots: state.free_slots,
            next_slot: state.next_slot,
            pending_release: state.pending_release,
            scratch: Vec::new(),
        })
    }
}

impl StreamEngine for ElectricalStream<'_> {
    fn admit_slack(&self) -> f64 {
        // The fluid engine promotes anything within EPS of the batch
        // instant, so arrivals inside that tolerance belong to the batch.
        electrical_sim::sim::EPS
    }

    fn events(&self) -> u64 {
        self.eng.events()
    }

    fn peek_time(&mut self) -> Option<f64> {
        match (self.eng.peek_time(), self.pending_release) {
            (Some(p), Some(r)) => Some(p.min(r)),
            (Some(p), None) => Some(p),
            (None, pending) => pending,
        }
    }

    fn add_job(&mut self, _rank: u64) -> usize {
        // Max-min rates are policy-free; ranks only matter optically. The
        // slot still identifies the job for completion attribution.
        if let Some(slot) = self.free_slots.pop() {
            slot
        } else {
            self.next_slot += 1;
            self.next_slot - 1
        }
    }

    fn retire_job(&mut self, slot: usize) {
        self.free_slots.push(slot);
    }

    fn inject_job(&mut self, dag: &DepSchedule, offset_s: f64, slot: usize) -> Result<()> {
        let batch: Vec<EngineFlow> = dag
            .transfers()
            .iter()
            .map(|t| EngineFlow {
                src: t.transfer.src.0,
                dst: t.transfer.dst.0,
                bytes: t.transfer.bytes,
                // Identical float expression to the closed compose().
                release_s: offset_s + t.release_s,
                delay_s: self.overhead_s,
                deps: t.deps.clone(),
                job: slot,
            })
            .collect();
        for (flow, t) in batch.iter().zip(dag.transfers()) {
            if t.deps.is_empty() {
                self.pending_release = Some(match self.pending_release {
                    Some(r) => r.min(flow.release_s),
                    None => flow.release_s,
                });
            }
        }
        let base = self.eng.inject(&batch)?;
        debug_assert_eq!(base, self.flow_slot.len());
        self.flow_slot.resize(base + batch.len(), slot);
        Ok(())
    }

    fn step(&mut self) -> Result<()> {
        self.pending_release = None;
        self.eng.step()?;
        Ok(())
    }

    fn drain(&mut self, out: &mut Vec<EngineDone>) {
        self.scratch.clear();
        self.eng.drain_completed(&mut self.scratch);
        for &i in &self.scratch {
            let (start_s, finish_s) = self.eng.window(i);
            out.push(EngineDone {
                slot: self.flow_slot[i],
                start_s,
                finish_s,
            });
        }
    }

    fn finish_check(&mut self) -> Result<()> {
        // The closed path's "unreachable flows" diagnostic surfaces from a
        // step on the drained engine.
        self.eng.step()?;
        Ok(())
    }

    fn snapshot(&self) -> Value {
        ElectricalStreamState {
            engine: self.eng.snapshot(),
            flow_slot: self.flow_slot.clone(),
            free_slots: self.free_slots.clone(),
            next_slot: self.next_slot,
            pending_release: self.pending_release,
        }
        .to_value()
    }
}

// ---------------------------------------------------------------------------
// The service driver
// ---------------------------------------------------------------------------

struct Driver<'a, E: StreamEngine> {
    eng: &'a mut E,
    spec: &'a StreamSpec,
    lowered: &'a [LoweredTemplate],
    st: &'a mut ServiceState,
}

impl<E: StreamEngine> Driver<'_, E> {
    /// Pump the service loop. Returns `true` when paused at the requested
    /// arrival count, `false` when the stream ran dry and drained.
    fn run(&mut self, pause_after_arrivals: Option<u64>) -> Result<bool> {
        let mut done: Vec<EngineDone> = Vec::new();
        loop {
            if let Some(limit) = pause_after_arrivals {
                if self.st.arrivals >= limit {
                    return Ok(true);
                }
            }
            if self.st.next_arrival.is_none() {
                if let Some(t) = self.spec.arrivals.next(&mut self.st.gen) {
                    self.st.next_arrival = Some((self.st.gen.idx - 1, t));
                }
            }
            let peek = self.eng.peek_time();
            if let Some((idx, a)) = self.st.next_arrival {
                // Inject every arrival at or before the next event horizon
                // so the engine never processes a batch an un-injected
                // arrival should have joined. With an idle engine the
                // horizon is the arrival itself.
                let horizon = peek.map_or(a, |p| p + self.eng.admit_slack());
                if a <= horizon {
                    self.st.next_arrival = None;
                    self.dispatch_arrival(idx, a)?;
                    continue;
                }
            }
            if peek.is_none() {
                if self.st.in_service == 0 {
                    break;
                }
                // The fluid engine promotes lazily inside `step`: a
                // completion can leave the kernel momentarily empty with
                // dependents unblocked but not yet scheduled. Step anyway —
                // the promote pass schedules them — and treat a step that
                // makes no progress as a stuck stream.
                let before = self.eng.events();
                self.eng.step()?;
                done.clear();
                self.eng.drain(&mut done);
                for d in &done {
                    self.complete_one(d)?;
                }
                if self.eng.events() == before && done.is_empty() {
                    self.eng.finish_check()?;
                    return Err(cfg_err("stream drained with unfinished jobs"));
                }
                continue;
            }
            self.eng.step()?;
            done.clear();
            self.eng.drain(&mut done);
            for d in &done {
                self.complete_one(d)?;
            }
        }
        Ok(false)
    }

    fn dispatch_arrival(&mut self, idx: u64, arrival_s: f64) -> Result<()> {
        self.st.roll(arrival_s, self.spec);
        self.st.arrivals += 1;
        self.st.window.arrivals += 1;
        match self.spec.admission {
            Admission::Immediate => self.admit(idx, arrival_s, arrival_s),
            Admission::QueueDepth { limit } => {
                if self.st.in_service < limit {
                    self.admit(idx, arrival_s, arrival_s)
                } else {
                    self.st.queue.push(QueuedJob {
                        idx,
                        template: self.spec.template_of(idx),
                        arrival_s,
                    });
                    let depth = self.st.queue_depth();
                    if depth > self.st.peak_queue_depth {
                        self.st.peak_queue_depth = depth;
                    }
                    Ok(())
                }
            }
            Admission::Reject { limit } => {
                if self.st.in_service < limit {
                    self.admit(idx, arrival_s, arrival_s)
                } else {
                    self.st.rejected += 1;
                    self.st.window.rejected += 1;
                    Ok(())
                }
            }
        }
    }

    fn admit(&mut self, idx: u64, arrival_s: f64, admit_s: f64) -> Result<()> {
        self.st.roll(admit_s, self.spec);
        self.st.admitted += 1;
        self.st.window.admitted += 1;
        let template = self.spec.template_of(idx);
        let lowered = &self.lowered[template];
        if lowered.dag.is_empty() {
            // Nothing to run: the job completes the instant it is admitted.
            self.st.record_finish(
                self.spec,
                self.lowered,
                FinishedJob {
                    idx,
                    template,
                    arrival_s,
                    admit_s,
                    start_s: admit_s,
                    finish_s: admit_s,
                },
            );
            return Ok(());
        }
        let rank = job_rank(
            self.spec.policy,
            self.spec.templates[template].priority,
            idx,
        );
        let slot = self.eng.add_job(rank);
        self.eng.inject_job(&lowered.dag, admit_s, slot)?;
        if slot >= self.st.live.len() {
            self.st.live.resize(slot + 1, None);
        }
        self.st.live[slot] = Some(LiveJob {
            idx,
            template,
            arrival_s,
            admit_s,
            remaining: lowered.dag.len(),
            first_start: None,
            last_finish: 0.0,
        });
        self.st.in_service += 1;
        if self.st.in_service > self.st.peak_in_service {
            self.st.peak_in_service = self.st.in_service;
        }
        Ok(())
    }

    fn complete_one(&mut self, d: &EngineDone) -> Result<()> {
        let finished = {
            let Some(job) = self.st.live.get_mut(d.slot).and_then(Option::as_mut) else {
                return Err(cfg_err("completion for an unknown job slot"));
            };
            job.remaining -= 1;
            job.first_start = Some(match job.first_start {
                Some(s) => s.min(d.start_s),
                None => d.start_s,
            });
            if d.finish_s > job.last_finish {
                job.last_finish = d.finish_s;
            }
            job.remaining == 0
        };
        if !finished {
            return Ok(());
        }
        let Some(job) = self.st.live[d.slot].take() else {
            return Err(cfg_err("completion for an unknown job slot"));
        };
        self.eng.retire_job(d.slot);
        self.st.in_service -= 1;
        self.st.record_finish(
            self.spec,
            self.lowered,
            FinishedJob {
                idx: job.idx,
                template: job.template,
                arrival_s: job.arrival_s,
                admit_s: job.admit_s,
                start_s: job.first_start.unwrap_or(job.admit_s),
                finish_s: job.last_finish,
            },
        );
        // Completions free capacity: backfill from the admission queue at
        // the completion instant.
        if let Admission::QueueDepth { limit } = self.spec.admission {
            while self.st.in_service < limit && self.st.queue_head < self.st.queue.len() {
                let q = self.st.queue[self.st.queue_head].clone();
                self.st.queue_head += 1;
                if self.st.queue_head > 64 && self.st.queue_head * 2 > self.st.queue.len() {
                    self.st.queue.drain(..self.st.queue_head);
                    self.st.queue_head = 0;
                }
                self.admit(q.idx, q.arrival_s, d.finish_s)?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Substrate glue
// ---------------------------------------------------------------------------

/// Fold `U64` values that fit `i64` into `I64` throughout a [`Value`] tree.
/// The JSON parser yields `I64` for any integer fitting it, so without this
/// a checkpoint's opaque engine image would compare unequal to itself after
/// a JSON round-trip (unsigned fields serialize as `U64`).
fn canonical_value(v: Value) -> Value {
    match v {
        Value::U64(n) => match i64::try_from(n) {
            Ok(i) => Value::I64(i),
            Err(_) => Value::U64(n),
        },
        Value::Seq(items) => Value::Seq(items.into_iter().map(canonical_value).collect()),
        Value::Map(entries) => Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k, canonical_value(v)))
                .collect(),
        ),
        other => other,
    }
}

fn check_checkpoint(ck: &StreamCheckpoint, substrate: &str, spec: &StreamSpec) -> Result<()> {
    if ck.version != STREAM_CHECKPOINT_VERSION {
        return Err(cfg_err("unsupported stream checkpoint version"));
    }
    if ck.substrate != substrate {
        return Err(cfg_err(
            "stream checkpoint was taken on a different substrate",
        ));
    }
    if ck.templates != spec.templates.len() || ck.policy != spec.policy {
        return Err(cfg_err("stream checkpoint does not match the spec"));
    }
    Ok(())
}

fn finish_report(
    spec: &StreamSpec,
    mut st: ServiceState,
    substrate: &str,
    events: u64,
) -> StreamReport {
    st.flush_window(spec);
    StreamReport {
        substrate: substrate.into(),
        policy: spec.policy,
        admission: spec.admission,
        arrivals: st.arrivals,
        admitted: st.admitted,
        rejected: st.rejected,
        completed: st.completed,
        makespan_s: st.last_finish_s,
        events,
        mean_utilization: if spec.reference_bps > 0.0 && st.last_finish_s > 0.0 {
            st.total_bytes / (spec.reference_bps * st.last_finish_s)
        } else {
            0.0
        },
        slowdown: st.run_slow.summary(),
        mean_slowdown: if st.completed > 0 {
            st.slow_sum / st.completed as f64
        } else {
            1.0
        },
        fairness_index: jain_from_sums(st.completed, st.slow_sum, st.slow_sq),
        peak_queue_depth: st.peak_queue_depth,
        peak_in_service: st.peak_in_service,
        windows: st.windows,
        jobs: st.jobs,
    }
}

fn outcome<E: StreamEngine>(
    eng: &E,
    spec: &StreamSpec,
    st: ServiceState,
    substrate: &str,
    paused: bool,
) -> StreamOutcome {
    if paused {
        StreamOutcome::Paused(Box::new(StreamCheckpoint {
            version: STREAM_CHECKPOINT_VERSION,
            substrate: substrate.into(),
            arrivals_seen: st.arrivals,
            templates: spec.templates.len(),
            policy: spec.policy,
            engine: canonical_value(eng.snapshot()),
            state: st,
        }))
    } else {
        StreamOutcome::Done(finish_report(spec, st, substrate, eng.events()))
    }
}

pub(crate) fn optical_stream(
    sub: &mut OpticalSubstrate,
    spec: &StreamSpec,
    resume: Option<&StreamCheckpoint>,
    pause_after_arrivals: Option<u64>,
) -> Result<StreamOutcome> {
    spec.validate()?;
    let lowered = lower_templates(sub, spec)?;
    let (mut eng, mut st) = match resume {
        None => (OpticalStream::build(sub, spec)?, ServiceState::fresh(spec)),
        Some(ck) => {
            check_checkpoint(ck, "optical", spec)?;
            (
                OpticalStream::restore(sub, spec, &ck.engine)?,
                ck.state.clone(),
            )
        }
    };
    let paused = Driver {
        eng: &mut eng,
        spec,
        lowered: &lowered,
        st: &mut st,
    }
    .run(pause_after_arrivals)?;
    Ok(outcome(&eng, spec, st, "optical", paused))
}

pub(crate) fn electrical_stream(
    sub: &mut ElectricalSubstrate,
    spec: &StreamSpec,
    resume: Option<&StreamCheckpoint>,
    pause_after_arrivals: Option<u64>,
) -> Result<StreamOutcome> {
    spec.validate()?;
    let lowered = lower_templates(sub, spec)?;
    let overhead_s = sub.step_overhead_s();
    let mut st;
    let net = sub.network();
    let mut eng = match resume {
        None => {
            st = ServiceState::fresh(spec);
            ElectricalStream::build(net, overhead_s)
        }
        Some(ck) => {
            check_checkpoint(ck, "electrical", spec)?;
            st = ck.state.clone();
            ElectricalStream::restore(net, overhead_s, &ck.engine)?
        }
    };
    let paused = Driver {
        eng: &mut eng,
        spec,
        lowered: &lowered,
        st: &mut st,
    }
    .run(pause_after_arrivals)?;
    Ok(outcome(&eng, spec, st, "electrical", paused))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenancy::{Job, TenancySpec};
    use optical_sim::sim::StepSchedule;
    use optical_sim::{NodeId, OpticalConfig, Transfer};

    fn optical() -> OpticalSubstrate {
        OpticalSubstrate::new(
            OpticalConfig::new(8, 4)
                .with_lambda_bandwidth(1e9)
                .with_message_overhead(0.0)
                .with_hop_propagation(0.0),
        )
        .unwrap()
    }

    fn electrical() -> ElectricalSubstrate {
        ElectricalSubstrate::new(electrical_sim::topology::star_cluster(8, 1e9, 0.0), 1e-6)
    }

    fn sched(transfers: Vec<Vec<(usize, usize, u64)>>) -> StepSchedule {
        StepSchedule::from_steps(
            transfers
                .into_iter()
                .map(|step| {
                    step.into_iter()
                        .map(|(s, d, b)| Transfer::shortest(NodeId(s), NodeId(d), b))
                        .collect()
                })
                .collect(),
        )
    }

    fn templates() -> Vec<StreamTemplate> {
        vec![
            StreamTemplate::new(
                "a",
                JobWorkload::Steps(sched(vec![vec![(0, 1, 1_000_000)], vec![(1, 2, 500_000)]])),
            )
            .with_priority(2),
            StreamTemplate::new(
                "b",
                JobWorkload::Steps(sched(vec![vec![(2, 3, 2_000_000), (4, 5, 1_000_000)]])),
            )
            .with_priority(7),
            StreamTemplate::new(
                "c",
                JobWorkload::Steps(sched(vec![vec![(5, 6, 750_000)], vec![(6, 7, 250_000)]])),
            )
            .with_priority(1),
        ]
    }

    const ARRIVALS: [f64; 3] = [0.0, 1.3e-4, 2.9e-4];

    fn stream_spec(policy: SchedPolicy) -> StreamSpec {
        let mut spec = StreamSpec::new(
            ArrivalProcess::Trace {
                arrivals_s: ARRIVALS.to_vec(),
            },
            policy,
        )
        .with_retained_jobs(true);
        for t in templates() {
            spec = spec.with_template(t);
        }
        spec
    }

    fn closed_spec(policy: SchedPolicy) -> TenancySpec {
        let mut spec = TenancySpec::new(policy);
        for (i, (t, &a)) in templates().iter().zip(ARRIVALS.iter()).enumerate() {
            spec = spec.with_job(Job {
                name: format!("job{i}"),
                arrival_s: a,
                compute_s: 0.0,
                priority: t.priority,
                workload: t.workload.clone(),
            });
        }
        spec
    }

    #[test]
    fn pre_known_arrivals_match_closed_execute_jobs_bit_exactly() {
        for policy in SchedPolicy::ALL {
            for (closed, streamed) in [
                (
                    optical().execute_jobs(&closed_spec(policy)).unwrap(),
                    optical().execute_stream(&stream_spec(policy)).unwrap(),
                ),
                (
                    electrical().execute_jobs(&closed_spec(policy)).unwrap(),
                    electrical().execute_stream(&stream_spec(policy)).unwrap(),
                ),
            ] {
                let tag = format!("{policy:?} on {}", closed.substrate);
                assert_eq!(streamed.events, closed.events, "{tag}: events");
                assert_eq!(
                    streamed.makespan_s.to_bits(),
                    closed.makespan_s.to_bits(),
                    "{tag}: makespan"
                );
                assert_eq!(streamed.completed, closed.jobs.len() as u64, "{tag}");
                let mut jobs = streamed.jobs.clone();
                jobs.sort_by_key(|j| j.job);
                for (s, c) in jobs.iter().zip(&closed.jobs) {
                    assert_eq!(s.finish_s.to_bits(), c.finish_s.to_bits(), "{tag}: finish");
                    assert_eq!(s.start_s.to_bits(), c.start_s.to_bits(), "{tag}: start");
                    assert_eq!(
                        s.makespan_s.to_bits(),
                        c.makespan_s.to_bits(),
                        "{tag}: makespan"
                    );
                    assert_eq!(
                        s.slowdown.to_bits(),
                        c.slowdown.to_bits(),
                        "{tag}: slowdown"
                    );
                }
                // Fairness accumulates in completion order vs job order.
                assert!(
                    (streamed.fairness_index - closed.fairness_index).abs() < 1e-12,
                    "{tag}: fairness {} vs {}",
                    streamed.fairness_index,
                    closed.fairness_index
                );
            }
        }
    }

    #[test]
    fn poisson_stream_is_deterministic_and_monotone() {
        let p = ArrivalProcess::Poisson {
            rate_hz: 1e4,
            count: 100,
            seed: 42,
        };
        let mut g1 = p.fresh_gen();
        let mut g2 = p.fresh_gen();
        let mut prev = 0.0;
        for _ in 0..100 {
            let a = p.next(&mut g1).unwrap();
            assert_eq!(a.to_bits(), p.next(&mut g2).unwrap().to_bits());
            assert!(a >= prev);
            prev = a;
        }
        assert!(p.next(&mut g1).is_none());
        // Mean inter-arrival should be in the right ballpark for 1/rate.
        assert!(prev > 100.0 * 0.2e-4 && prev < 100.0 * 5e-4, "total {prev}");
    }

    #[test]
    fn burst_process_generates_simultaneous_groups() {
        let p = ArrivalProcess::Burst {
            bursts: 3,
            size: 2,
            period_s: 1e-3,
        };
        let mut g = p.fresh_gen();
        let times: Vec<f64> = std::iter::from_fn(|| p.next(&mut g)).collect();
        assert_eq!(times, vec![0.0, 0.0, 1e-3, 1e-3, 2e-3, 2e-3]);
        assert_eq!(p.count(), 6);
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let mut spec = StreamSpec::new(
            ArrivalProcess::Poisson {
                rate_hz: 5e3,
                count: 6,
                seed: 7,
            },
            SchedPolicy::Fifo,
        )
        .with_retained_jobs(true)
        .with_reference_bps(4e9);
        for t in templates() {
            spec = spec.with_template(t);
        }
        let run =
            |sub: &mut dyn Substrate| serde_json::to_string(&sub.execute_stream(&spec).unwrap());
        let paused_run = |sub: &mut dyn Substrate| {
            let ck = sub
                .execute_stream_until(&spec, Some(3))
                .unwrap()
                .checkpoint()
                .expect("should pause at 3 arrivals");
            assert_eq!(ck.arrivals_seen, 3);
            // Round-trip the checkpoint through JSON like a file would.
            let json = serde_json::to_string(&ck).unwrap();
            let back: StreamCheckpoint = serde_json::from_str(&json).unwrap();
            assert_eq!(back, ck);
            let report = sub
                .resume_stream(&spec, &back, None)
                .unwrap()
                .report()
                .expect("resume should run to completion");
            serde_json::to_string(&report)
        };
        assert_eq!(run(&mut optical()), paused_run(&mut optical()));
        assert_eq!(run(&mut electrical()), paused_run(&mut electrical()));
    }

    #[test]
    fn checkpoint_mismatches_are_rejected() {
        let spec = stream_spec(SchedPolicy::Fifo);
        let ck = optical()
            .execute_stream_until(&spec, Some(1))
            .unwrap()
            .checkpoint()
            .unwrap();
        assert!(electrical().resume_stream(&spec, &ck, None).is_err());
        let mut stale = ck.clone();
        stale.version += 1;
        assert!(optical().resume_stream(&spec, &stale, None).is_err());
        let other_policy = stream_spec(SchedPolicy::Priority);
        assert!(optical().resume_stream(&other_policy, &ck, None).is_err());
    }

    #[test]
    fn queue_depth_admission_bounds_concurrency() {
        let spec =
            stream_spec(SchedPolicy::Fifo).with_admission(Admission::QueueDepth { limit: 1 });
        for report in [
            optical().execute_stream(&spec).unwrap(),
            electrical().execute_stream(&spec).unwrap(),
        ] {
            assert_eq!(report.peak_in_service, 1, "{}", report.substrate);
            assert_eq!(report.completed, 3);
            assert_eq!(report.rejected, 0);
            assert!(report.peak_queue_depth >= 1);
            // Serialized jobs: each admits only after the previous one
            // finished, so makespans include queueing delay.
            let immediate = stream_spec(SchedPolicy::Fifo);
            let mut sub = optical();
            let base = sub.execute_stream(&immediate).unwrap();
            assert!(report.makespan_s >= base.makespan_s);
        }
    }

    #[test]
    fn reject_admission_sheds_load() {
        let mut spec = StreamSpec::new(
            ArrivalProcess::Trace {
                arrivals_s: vec![0.0, 0.0, 0.0],
            },
            SchedPolicy::Fifo,
        )
        .with_admission(Admission::Reject { limit: 1 });
        for t in templates() {
            spec = spec.with_template(t);
        }
        for report in [
            optical().execute_stream(&spec).unwrap(),
            electrical().execute_stream(&spec).unwrap(),
        ] {
            assert_eq!(report.arrivals, 3, "{}", report.substrate);
            assert_eq!(report.completed, 1);
            assert_eq!(report.rejected, 2);
            assert_eq!(report.peak_in_service, 1);
        }
    }

    #[test]
    fn windows_partition_the_run() {
        let spec = stream_spec(SchedPolicy::Fifo)
            .with_window(1e-4)
            .with_reference_bps(4e9);
        let report = optical().execute_stream(&spec).unwrap();
        assert!(!report.windows.is_empty());
        let arrivals: u64 = report.windows.iter().map(|w| w.arrivals).sum();
        let completed: u64 = report.windows.iter().map(|w| w.completed).sum();
        assert_eq!(arrivals, report.arrivals);
        assert_eq!(completed, report.completed);
        let mut prev = None;
        for w in &report.windows {
            assert!((w.end_s - w.start_s - 1e-4).abs() < 1e-15);
            assert!(w.utilization >= 0.0);
            if let Some(p) = prev {
                assert!(w.index > p, "window indices must increase");
            }
            prev = Some(w.index);
        }
    }

    #[test]
    fn empty_stream_reports_idle_service() {
        let mut spec = StreamSpec::new(
            ArrivalProcess::Trace { arrivals_s: vec![] },
            SchedPolicy::Fifo,
        );
        for t in templates() {
            spec = spec.with_template(t);
        }
        let report = optical().execute_stream(&spec).unwrap();
        assert_eq!(report.arrivals, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.makespan_s, 0.0);
        assert_eq!(report.mean_slowdown, 1.0);
        assert_eq!(report.fairness_index, 1.0);
        assert!(report.windows.is_empty());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let base = stream_spec(SchedPolicy::Fifo);
        let bad_rate = StreamSpec {
            arrivals: ArrivalProcess::Poisson {
                rate_hz: 0.0,
                count: 1,
                seed: 0,
            },
            ..base.clone()
        };
        assert!(optical().execute_stream(&bad_rate).is_err());
        let bad_trace = StreamSpec {
            arrivals: ArrivalProcess::Trace {
                arrivals_s: vec![1.0, 0.5],
            },
            ..base.clone()
        };
        assert!(optical().execute_stream(&bad_trace).is_err());
        let no_templates = StreamSpec {
            templates: vec![],
            ..base.clone()
        };
        assert!(optical().execute_stream(&no_templates).is_err());
        let bad_window = StreamSpec {
            window_s: 0.0,
            ..base.clone()
        };
        assert!(optical().execute_stream(&bad_window).is_err());
        let bad_limit = base.with_admission(Admission::QueueDepth { limit: 0 });
        assert!(optical().execute_stream(&bad_limit).is_err());
    }
}
