//! Group-size / stop-level selection and the end-to-end plan→simulate
//! pipeline.
//!
//! The search space is small (`m ∈ 2..=2w+1`, a handful of stop levels per
//! `m`) but each candidate costs a plan construction including trial RWA;
//! the sweep is embarrassingly parallel and fans out over std scoped
//! threads for large rings.

use crate::cost::{predict_time_s, CostBreakdown};
use crate::error::{Result, WrhtError};
use crate::lower::to_optical_schedule;
use crate::params::{GroupSize, WrhtParams};
use crate::plan::{build_plan, candidate_plans, StopPolicy, WrhtPlan};
use crate::substrate::{OpticalSubstrate, RunReport, Substrate};
use optical_sim::OpticalConfig;
use serde::{Deserialize, Serialize};

/// Result of planning (and optionally simulating) a Wrht all-reduce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanOutcome {
    /// Group size used.
    pub m: usize,
    /// The constructed plan.
    pub plan: WrhtPlan,
    /// Analytic prediction.
    pub predicted: CostBreakdown,
    /// Simulated communication time (stepped optical substrate), seconds.
    pub simulated_time_s: f64,
    /// Substrate execution report.
    pub report: RunReport,
}

/// Candidates for one group size under a stop policy.
fn plans_for_m(m: usize, params: &WrhtParams) -> Vec<WrhtPlan> {
    match params.stop_policy {
        StopPolicy::EarliestFeasible => build_plan(params.n, m, params.wavelengths)
            .map(|p| vec![p])
            .unwrap_or_default(),
        StopPolicy::BestDepth => {
            candidate_plans(params.n, m, params.wavelengths).unwrap_or_default()
        }
    }
}

/// Evaluate all candidates for a slice of group sizes; returns the best.
fn best_in_range(
    ms: &[usize],
    params: &WrhtParams,
    config: &OpticalConfig,
    bytes: u64,
) -> Option<(usize, WrhtPlan, CostBreakdown)> {
    let mut best: Option<(usize, WrhtPlan, CostBreakdown)> = None;
    for &m in ms {
        for plan in plans_for_m(m, params) {
            let cost = predict_time_s(&plan, config, bytes);
            let better = best
                .as_ref()
                .is_none_or(|(_, _, inc)| cost.total_s() < inc.total_s());
            if better {
                best = Some((m, plan, cost));
            }
        }
    }
    best
}

/// Search group sizes `2..=max_group_size` (and, under
/// [`StopPolicy::BestDepth`], every stop level) for the plan minimizing
/// predicted communication time for `bytes` per message.
///
/// The sweep parallelizes across std scoped threads when the ring is
/// large enough for planning cost to matter.
pub fn choose_group_size(
    params: &WrhtParams,
    config: &OpticalConfig,
    bytes: u64,
) -> Result<(usize, WrhtPlan, CostBreakdown)> {
    let ms: Vec<usize> = (2..=params.max_group_size()).collect();

    // Threshold chosen so tests and small rings stay single-threaded.
    let best = if params.n >= 512 && ms.len() >= 8 {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
            .min(ms.len());
        let chunk = ms.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = ms
                .chunks(chunk)
                .map(|slice| scope.spawn(move || best_in_range(slice, params, config, bytes)))
                .collect();
            handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(found) => found,
                    // Re-raise the worker's panic payload on the caller
                    // thread instead of wrapping it in a second panic.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .min_by(|a, b| {
                    // total_cmp: bit-identical to partial_cmp on the finite
                    // costs predict_time_s produces, and totally ordered.
                    a.2.total_s()
                        .total_cmp(&b.2.total_s())
                        // Deterministic tie-break on smaller m.
                        .then(a.0.cmp(&b.0))
                })
        })
    } else {
        best_in_range(&ms, params, config, bytes)
    };

    best.ok_or(WrhtError::NoFeasiblePlan {
        n: params.n,
        wavelengths: params.wavelengths,
    })
}

/// Build a plan per `params` (fixed or optimizer-chosen `m`), lower it and
/// execute it on the stepped optical [`Substrate`] with First-Fit RWA.
pub fn plan_and_simulate(
    params: &WrhtParams,
    config: &OpticalConfig,
    bytes: u64,
) -> Result<PlanOutcome> {
    debug_assert_eq!(
        params.n, config.nodes,
        "params and config disagree on node count"
    );
    let (m, plan, predicted) = match params.group_size {
        GroupSize::Fixed(m) => {
            let best = plans_for_m(m, params).into_iter().min_by(|a, b| {
                let ca = predict_time_s(a, config, bytes).total_s();
                let cb = predict_time_s(b, config, bytes).total_s();
                ca.total_cmp(&cb)
            });
            let Some(plan) = best else {
                // Surface the underlying construction error; if `m` is
                // buildable after all, report infeasibility typed rather
                // than panicking.
                build_plan(params.n, m, params.wavelengths)?;
                return Err(WrhtError::NoFeasiblePlan {
                    n: params.n,
                    wavelengths: params.wavelengths,
                });
            };
            let cost = predict_time_s(&plan, config, bytes);
            (m, plan, cost)
        }
        GroupSize::Auto => choose_group_size(params, config, bytes)?,
    };
    let sched = to_optical_schedule(&plan, bytes);
    let mut substrate = OpticalSubstrate::new(config.clone())?;
    let report = substrate.execute(&sched)?;
    Ok(PlanOutcome {
        m,
        plan,
        predicted,
        simulated_time_s: report.total_time_s,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_is_at_least_as_good_as_any_fixed_m() {
        let n = 256;
        let w = 16;
        let bytes = 100 << 20;
        let config = OpticalConfig::new(n, w);
        let auto = choose_group_size(&WrhtParams::auto(n, w), &config, bytes).unwrap();
        for m in 2..=WrhtParams::auto(n, w).max_group_size() {
            if let Ok(plan) = build_plan(n, m, w) {
                let cost = predict_time_s(&plan, &config, bytes);
                assert!(
                    auto.2.total_s() <= cost.total_s() + 1e-15,
                    "m={m} beats auto"
                );
            }
        }
    }

    #[test]
    fn best_depth_never_loses_to_earliest_feasible() {
        for (n, w, mb) in [(64usize, 64usize, 25u64), (128, 32, 100), (512, 64, 500)] {
            let config = OpticalConfig::new(n, w);
            let bytes = mb << 20;
            let paper = choose_group_size(&WrhtParams::auto(n, w), &config, bytes).unwrap();
            let plus = choose_group_size(
                &WrhtParams::auto(n, w).with_stop_policy(StopPolicy::BestDepth),
                &config,
                bytes,
            )
            .unwrap();
            assert!(
                plus.2.total_s() <= paper.2.total_s() + 1e-15,
                "n={n}: best-depth {} vs paper {}",
                plus.2.total_s(),
                paper.2.total_s()
            );
        }
    }

    #[test]
    fn best_depth_fixes_the_small_n_pathology() {
        // At n=16, w=64 the paper rule stops immediately with a slow
        // full-buffer all-to-all; BestDepth should find a faster tree.
        let n = 16;
        let w = 64;
        let config = OpticalConfig::paper_defaults(n);
        let bytes = 100u64 << 20;
        let paper = choose_group_size(&WrhtParams::auto(n, w), &config, bytes).unwrap();
        let plus = choose_group_size(
            &WrhtParams::auto(n, w).with_stop_policy(StopPolicy::BestDepth),
            &config,
            bytes,
        )
        .unwrap();
        assert!(
            plus.2.total_s() < paper.2.total_s() * 0.8,
            "expected a clear improvement: {} vs {}",
            plus.2.total_s(),
            paper.2.total_s()
        );
    }

    #[test]
    fn parallel_and_serial_sweeps_agree() {
        // n >= 512 triggers the threaded path; compare against a manual
        // serial scan.
        let n = 512;
        let w = 16;
        let bytes = 10 << 20;
        let config = OpticalConfig::new(n, w);
        let params = WrhtParams::auto(n, w);
        let parallel = choose_group_size(&params, &config, bytes).unwrap();
        let mut serial_best = f64::INFINITY;
        for m in 2..=params.max_group_size() {
            if let Ok(plan) = build_plan(n, m, w) {
                serial_best = serial_best.min(predict_time_s(&plan, &config, bytes).total_s());
            }
        }
        assert!((parallel.2.total_s() - serial_best).abs() < 1e-15);
    }

    #[test]
    fn simulate_agrees_with_prediction() {
        let n = 128;
        let w = 16;
        let config = OpticalConfig::new(n, w);
        let outcome = plan_and_simulate(&WrhtParams::auto(n, w), &config, 25 << 20).unwrap();
        let rel = (outcome.predicted.total_s() - outcome.simulated_time_s).abs()
            / outcome.simulated_time_s;
        assert!(rel < 1e-9, "rel={rel}");
    }

    #[test]
    fn fixed_group_size_is_respected() {
        let n = 64;
        let w = 8;
        let config = OpticalConfig::new(n, w);
        let outcome = plan_and_simulate(&WrhtParams::fixed(n, w, 4), &config, 1 << 20).unwrap();
        assert_eq!(outcome.m, 4);
        assert_eq!(outcome.plan.m, 4);
    }

    #[test]
    fn infeasible_fixed_m_errors() {
        let config = OpticalConfig::new(64, 2);
        let err = plan_and_simulate(&WrhtParams::fixed(64, 2, 63), &config, 1 << 20).unwrap_err();
        assert!(matches!(
            err,
            WrhtError::GroupSizeNeedsMoreWavelengths { .. }
        ));
    }

    #[test]
    fn wrht_beats_oring_at_scale() {
        // The headline qualitative claim at reduced scale: Wrht's simulated
        // time is well below O-Ring's for a realistic payload.
        use crate::baselines::oring_schedule;
        let n = 256;
        let w = 64;
        let elems = 1 << 20; // 4 MiB gradient
        let config = OpticalConfig::paper_defaults(n);
        let wrht = plan_and_simulate(&WrhtParams::auto(n, w), &config, (elems * 4) as u64).unwrap();
        let mut substrate = OpticalSubstrate::new(config).unwrap();
        let oring = substrate.execute(&oring_schedule(n, elems, 4)).unwrap();
        assert!(
            wrht.simulated_time_s < oring.total_time_s / 2.0,
            "wrht {} vs oring {}",
            wrht.simulated_time_s,
            oring.total_time_s
        );
    }
}
