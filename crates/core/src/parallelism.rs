//! The mixed-parallelism IR: TP × PP × DP × MoE lowered to one
//! hierarchical traffic DAG.
//!
//! Transformer training traffic is not a single all-reduce. One iteration
//! mixes four patterns with different localities:
//!
//! * **Tensor parallelism (TP)** — every transformer block ends in an
//!   all-reduce of the activation across the `tp` ranks that shard its
//!   matmuls. Latency-critical, so TP ranks share a group and the
//!   all-reduce stays on the intra-group fabric.
//! * **Pipeline parallelism (PP)** — activations cross stage boundaries as
//!   point-to-point sends between corresponding ranks of adjacent stages.
//!   Stages live in different groups, so these ride the inter fabric.
//! * **Data parallelism (DP)** — after the last microbatch, each stage's
//!   gradients are all-reduced across its `dp` replicas — a ring
//!   collective over one rank per group, entirely inter-group.
//! * **MoE all-to-all** — expert-parallel layers exchange tokens between
//!   every pair of expert hosts ([`crate::alltoall::alltoall_pairs`]).
//!   Expert hosts span replicas, so the pattern straddles both fabrics.
//!
//! [`ParallelismSpec`] names the degrees, [`StageModel`] carries the byte
//! counts, and [`lower_parallelism`] emits one [`DepSchedule`] whose
//! transfers the hierarchy layer tags by endpoint
//! ([`crate::hierarchy::HierSpec::domains`]) and executes on a
//! [`crate::hierarchy::ComposedSubstrate`].
//!
//! # Rank layout
//!
//! The job occupies [`ParallelismSpec::groups`]` = pp * dp` groups of
//! `tp` hosts. Group `stage * dp + replica` holds the `tp` lanes of
//! pipeline stage `stage`, replica `replica`; lane `k` of that group is
//! global host `(stage * dp + replica) * tp + k`. TP traffic therefore
//! never leaves a group, and PP/DP traffic never stays inside one.
//!
//! # Dependency structure
//!
//! The lowering tracks a per-host frontier (the transfers that last
//! touched each host). Collectives enter through a barrier over their
//! members' frontiers and chain step-over-step internally (the bucket
//! pattern [`DepSchedule::from_steps`] uses); point-to-points depend on
//! both endpoints' frontiers. The result is a DAG where, e.g., replica 0's
//! TP all-reduce for microbatch 2 can overlap replica 1's PP send for
//! microbatch 1 — exactly the concurrency a real pipeline exposes.

use collectives::ring::ring_allreduce;
use collectives::Schedule;
use optical_sim::{NodeId, OpticalError, Transfer};
use serde::{Deserialize, Serialize};

use crate::alltoall::alltoall_pairs;
use crate::dag::{DepSchedule, DepTransfer};
use crate::error::Result;
use crate::hierarchy::HierSpec;

fn cfg_err(msg: &'static str) -> crate::error::WrhtError {
    OpticalError::BadConfig(msg).into()
}

/// Degrees of a mixed-parallelism training job.
///
/// `tp * pp * dp` hosts total, arranged as [`ParallelismSpec::groups`]
/// groups of `tp` (see the module docs for the rank layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismSpec {
    /// Tensor-parallel degree: hosts per group (>= 2 — a group is an
    /// optical ring and TP of one produces no traffic).
    pub tp: usize,
    /// Pipeline stages (>= 1).
    pub pp: usize,
    /// Data-parallel replicas per stage (>= 1).
    pub dp: usize,
    /// Expert hosts for MoE all-to-all; `0` disables MoE. When enabled,
    /// needs >= 2 and at most `dp * tp` (the hosts of one stage).
    pub moe_experts: usize,
    /// Microbatches pushed through the pipeline per iteration (>= 1).
    pub microbatches: usize,
}

impl ParallelismSpec {
    /// Validated constructor.
    ///
    /// # Errors
    /// Rejects degenerate degrees (see field docs).
    pub fn new(
        tp: usize,
        pp: usize,
        dp: usize,
        moe_experts: usize,
        microbatches: usize,
    ) -> Result<Self> {
        let spec = Self {
            tp,
            pp,
            dp,
            moe_experts,
            microbatches,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Check the degree constraints without consuming the spec.
    ///
    /// # Errors
    /// Rejects degenerate degrees (see field docs).
    pub fn validate(&self) -> Result<()> {
        if self.tp < 2 {
            return Err(cfg_err("tensor parallelism needs tp >= 2"));
        }
        if self.pp == 0 || self.dp == 0 {
            return Err(cfg_err(
                "pipeline and data parallelism degrees must be >= 1",
            ));
        }
        if self.microbatches == 0 {
            return Err(cfg_err("at least one microbatch per iteration"));
        }
        if self.moe_experts == 1 {
            return Err(cfg_err("MoE needs at least two expert hosts (or zero)"));
        }
        if self.moe_experts > self.dp * self.tp {
            return Err(cfg_err("MoE experts cannot exceed the hosts of one stage"));
        }
        Ok(())
    }

    /// Groups the job occupies: `pp * dp`.
    #[must_use]
    pub fn groups(&self) -> usize {
        self.pp * self.dp
    }

    /// Total hosts: `tp * pp * dp`.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.tp * self.groups()
    }

    /// The hierarchy shape this job lowers onto.
    ///
    /// # Errors
    /// Propagates the degree constraints of [`ParallelismSpec::validate`].
    pub fn hier(&self) -> Result<HierSpec> {
        self.validate()?;
        HierSpec::new(self.groups(), self.tp)
    }

    /// Global host id of `(stage, replica, lane)`.
    #[must_use]
    pub fn node(&self, stage: usize, replica: usize, lane: usize) -> usize {
        (stage * self.dp + replica) * self.tp + lane
    }
}

/// Byte counts of the lowered model, decoupled from any model zoo: the
/// gradient bytes of each pipeline stage and the activation bytes crossing
/// block/stage boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageModel {
    /// Gradient bytes per pipeline stage (one entry per stage, each >= 1).
    pub gradient_bytes: Vec<u64>,
    /// Activation bytes per microbatch at a block/stage boundary (>= 1).
    pub activation_bytes: u64,
}

impl StageModel {
    /// Split `total_gradient_bytes` evenly over `pp` stages (remainder to
    /// the earliest stages, so the sum is exact).
    #[must_use]
    pub fn split(total_gradient_bytes: u64, pp: usize, activation_bytes: u64) -> Self {
        let base = total_gradient_bytes / pp as u64;
        let extra = (total_gradient_bytes % pp as u64) as usize;
        Self {
            gradient_bytes: (0..pp).map(|s| base + u64::from(s < extra)).collect(),
            activation_bytes,
        }
    }
}

/// Per-host frontier DAG builder (see module docs).
struct DagBuilder {
    transfers: Vec<DepTransfer>,
    frontier: Vec<Vec<usize>>,
    stage: usize,
    scratch: Vec<usize>,
}

impl DagBuilder {
    fn new(nodes: usize) -> Self {
        Self {
            transfers: Vec::new(),
            frontier: vec![Vec::new(); nodes],
            stage: 0,
            scratch: Vec::new(),
        }
    }

    /// Advance the stage label (non-decreasing, required by
    /// [`DepSchedule::from_transfers`]).
    fn next_phase(&mut self) {
        if !self.transfers.is_empty() {
            self.stage += 1;
        }
    }

    fn push(&mut self, src: usize, dst: usize, bytes: u64, deps: Vec<usize>) -> usize {
        let idx = self.transfers.len();
        self.transfers.push(DepTransfer {
            transfer: Transfer::shortest(NodeId(src), NodeId(dst), bytes),
            deps,
            release_s: 0.0,
            stage: self.stage,
        });
        idx
    }

    /// Sorted, deduplicated union of the members' frontiers.
    fn barrier(&mut self, members: impl IntoIterator<Item = usize>) -> Vec<usize> {
        self.scratch.clear();
        for m in members {
            self.scratch.extend_from_slice(&self.frontier[m]);
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        self.scratch.clone()
    }

    /// Point-to-point transfer gated on both endpoints' frontiers.
    fn p2p(&mut self, src: usize, dst: usize, bytes: u64) {
        let deps = self.barrier([src, dst]);
        let idx = self.push(src, dst, bytes, deps);
        self.frontier[src] = vec![idx];
        self.frontier[dst] = vec![idx];
    }

    /// Embed a collective `sched` (already addressed in global host ids —
    /// see [`Schedule::over_members`]) with `bytes_per_elem`-wide
    /// elements: entry barrier over the members' frontiers, step-over-step
    /// dependency chains inside, exit frontier on every member.
    fn collective(&mut self, sched: &Schedule, members: &[usize], bytes_per_elem: u64) {
        let mut prev = self.barrier(members.iter().copied());
        for step in &sched.steps {
            let mut cur = Vec::with_capacity(step.transfers.len());
            for t in &step.transfers {
                if t.elems() == 0 {
                    continue;
                }
                let bytes = t.elems() as u64 * bytes_per_elem;
                cur.push(self.push(t.src, t.dst, bytes, prev.clone()));
            }
            if !cur.is_empty() {
                prev = cur;
            }
        }
        for &m in members {
            self.frontier[m] = prev.clone();
        }
    }

    /// One-step all-to-all among `hosts`: every ordered pair at once,
    /// barrier in, barrier out.
    fn alltoall(&mut self, hosts: &[usize], bytes: u64) {
        let entry = self.barrier(hosts.iter().copied());
        let mut out = Vec::new();
        for (src, dst) in alltoall_pairs(hosts) {
            out.push(self.push(src, dst, bytes, entry.clone()));
        }
        if out.is_empty() {
            return;
        }
        for &h in hosts {
            self.frontier[h] = out.clone();
        }
    }

    fn finish(self) -> Result<DepSchedule> {
        DepSchedule::from_transfers(self.transfers)
    }
}

/// Lower one training iteration of `spec` over `model` to a single
/// dependency DAG in the hierarchical rank layout (see module docs).
///
/// Per microbatch and pipeline stage: a TP ring all-reduce of the
/// activation inside every replica's group, the stage's MoE all-to-all
/// (when enabled) among its first [`ParallelismSpec::moe_experts`] hosts,
/// then the PP boundary point-to-points into the next stage. After the
/// last microbatch, each stage's TP-sharded gradients are ring
/// all-reduced across its `dp` replicas, one ring per lane.
///
/// Chunk sizes round up (`div_ceil`), so lowered bytes can exceed the
/// model's byte counts by at most one byte per chunk — never undershoot.
///
/// # Errors
/// Rejects invalid specs and models whose stage table does not match
/// `spec.pp` or whose byte counts are zero.
pub fn lower_parallelism(spec: &ParallelismSpec, model: &StageModel) -> Result<DepSchedule> {
    spec.validate()?;
    if model.gradient_bytes.len() != spec.pp {
        return Err(cfg_err(
            "stage model must have one entry per pipeline stage",
        ));
    }
    if model.activation_bytes == 0 || model.gradient_bytes.contains(&0) {
        return Err(cfg_err("stage model byte counts must be positive"));
    }

    let mut b = DagBuilder::new(spec.nodes());
    // One ring template per collective shape, re-addressed per member set.
    let tp_ring = ring_allreduce(spec.tp, spec.tp);
    let dp_ring = ring_allreduce(spec.dp, spec.dp);
    let act_chunk = model.activation_bytes.div_ceil(spec.tp as u64);

    for _microbatch in 0..spec.microbatches {
        for s in 0..spec.pp {
            // TP activation all-reduce inside every replica's group.
            b.next_phase();
            for r in 0..spec.dp {
                let members: Vec<usize> = (0..spec.tp).map(|k| spec.node(s, r, k)).collect();
                let sched = tp_ring.over_members(&members);
                b.collective(&sched, &members, act_chunk);
            }
            // MoE token exchange among the stage's expert hosts (spans
            // replicas, so the pairs mix intra and inter traffic).
            if spec.moe_experts >= 2 {
                b.next_phase();
                let base = spec.node(s, 0, 0);
                let hosts: Vec<usize> = (0..spec.moe_experts).map(|e| base + e).collect();
                b.alltoall(
                    &hosts,
                    model.activation_bytes.div_ceil(spec.moe_experts as u64),
                );
            }
            // PP boundary: activations to the corresponding rank of the
            // next stage (TP-sharded, one send per lane).
            if s + 1 < spec.pp {
                b.next_phase();
                for r in 0..spec.dp {
                    for k in 0..spec.tp {
                        b.p2p(spec.node(s, r, k), spec.node(s + 1, r, k), act_chunk);
                    }
                }
            }
        }
    }

    // DP gradient all-reduce: per stage, per lane, a ring across replicas.
    if spec.dp >= 2 {
        b.next_phase();
        for (s, &grad) in model.gradient_bytes.iter().enumerate() {
            let chunk = grad.div_ceil((spec.tp * spec.dp) as u64);
            for k in 0..spec.tp {
                let members: Vec<usize> = (0..spec.dp).map(|r| spec.node(s, r, k)).collect();
                let sched = dp_ring.over_members(&members);
                b.collective(&sched, &members, chunk);
            }
        }
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Domain;

    fn spec(tp: usize, pp: usize, dp: usize, moe: usize, mb: usize) -> ParallelismSpec {
        ParallelismSpec::new(tp, pp, dp, moe, mb).unwrap()
    }

    #[test]
    fn spec_validation_rejects_degenerate_degrees() {
        assert!(ParallelismSpec::new(1, 1, 1, 0, 1).is_err());
        assert!(ParallelismSpec::new(2, 0, 1, 0, 1).is_err());
        assert!(ParallelismSpec::new(2, 1, 0, 0, 1).is_err());
        assert!(ParallelismSpec::new(2, 1, 1, 0, 0).is_err());
        assert!(ParallelismSpec::new(2, 1, 1, 1, 1).is_err());
        assert!(ParallelismSpec::new(2, 1, 2, 5, 1).is_err());
        assert!(ParallelismSpec::new(2, 1, 2, 4, 1).is_ok());
    }

    #[test]
    fn rank_layout_matches_the_hierarchy() {
        let s = spec(4, 2, 3, 0, 1);
        assert_eq!(s.groups(), 6);
        assert_eq!(s.nodes(), 24);
        let h = s.hier().unwrap();
        assert_eq!(h.groups, 6);
        assert_eq!(h.group_size, 4);
        // Lanes of one (stage, replica) share a group.
        assert_eq!(h.group_of(s.node(1, 2, 0)), h.group_of(s.node(1, 2, 3)));
        // Different replicas / stages do not.
        assert_ne!(h.group_of(s.node(1, 0, 0)), h.group_of(s.node(1, 1, 0)));
        assert_ne!(h.group_of(s.node(0, 0, 0)), h.group_of(s.node(1, 0, 0)));
    }

    #[test]
    fn stage_model_split_is_exact() {
        let m = StageModel::split(10, 3, 7);
        assert_eq!(m.gradient_bytes, vec![4, 3, 3]);
        assert_eq!(m.gradient_bytes.iter().sum::<u64>(), 10);
        assert_eq!(m.activation_bytes, 7);
    }

    #[test]
    fn tp_only_jobs_stay_intra_group() {
        let s = spec(4, 1, 1, 0, 2);
        let m = StageModel::split(1 << 20, 1, 1 << 16);
        let dag = lower_parallelism(&s, &m).unwrap();
        assert!(!dag.transfers().is_empty());
        let h = s.hier().unwrap();
        for d in h.domains(&dag).unwrap() {
            assert_eq!(d, Domain::Intra { group: 0 });
        }
    }

    #[test]
    fn dp_rings_are_entirely_inter_group() {
        let s = spec(2, 1, 3, 0, 1);
        let m = StageModel::split(1 << 20, 1, 1 << 16);
        let dag = lower_parallelism(&s, &m).unwrap();
        let h = s.hier().unwrap();
        let domains = h.domains(&dag).unwrap();
        // The trailing DP phase is all inter-group.
        let dp_stage = dag.transfers().last().unwrap().stage;
        for (t, d) in dag.transfers().iter().zip(&domains) {
            if t.stage == dp_stage {
                assert_eq!(*d, Domain::Inter);
            }
        }
        assert!(domains.contains(&Domain::Inter));
    }

    #[test]
    fn moe_alltoall_mixes_domains_and_covers_every_pair() {
        let s = spec(2, 1, 2, 4, 1);
        let m = StageModel::split(1 << 20, 1, 1 << 16);
        let dag = lower_parallelism(&s, &m).unwrap();
        let h = s.hier().unwrap();
        let domains = h.domains(&dag).unwrap();
        // MoE transfers carry the per-pair chunk size; collect them.
        let moe_bytes = (1u64 << 16).div_ceil(4);
        let moe: Vec<usize> = dag
            .transfers()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.transfer.bytes == moe_bytes)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(moe.len(), 4 * 3, "every ordered expert pair exactly once");
        assert!(moe
            .iter()
            .any(|&i| matches!(domains[i], Domain::Intra { .. })));
        assert!(moe.iter().any(|&i| domains[i] == Domain::Inter));
    }

    #[test]
    fn pp_boundaries_link_corresponding_lanes() {
        let s = spec(2, 3, 1, 0, 1);
        let m = StageModel::split(3 << 20, 3, 1 << 16);
        let dag = lower_parallelism(&s, &m).unwrap();
        let h = s.hier().unwrap();
        let boundary = (1u64 << 16).div_ceil(2);
        let hops: Vec<&DepTransfer> = dag
            .transfers()
            .iter()
            .filter(|t| {
                h.group_of(t.transfer.src.0) != h.group_of(t.transfer.dst.0)
                    && t.transfer.bytes == boundary
            })
            .collect();
        // Two stage boundaries x tp lanes.
        assert_eq!(hops.len(), 2 * 2);
        for t in hops {
            assert_eq!(h.local(t.transfer.src.0), h.local(t.transfer.dst.0));
            assert_eq!(
                h.group_of(t.transfer.dst.0),
                h.group_of(t.transfer.src.0) + s.dp
            );
        }
    }

    #[test]
    fn lowering_is_deterministic_and_validates() {
        let s = spec(2, 2, 2, 4, 2);
        let m = StageModel::split(5 << 20, 2, 1 << 16);
        let a = lower_parallelism(&s, &m).unwrap();
        let b = lower_parallelism(&s, &m).unwrap();
        assert_eq!(a.transfers(), b.transfers());
        // Dependencies all precede their transfer and stages are
        // non-decreasing: from_transfers re-validated them already; check
        // the frontier discipline produced no self-sends.
        for t in a.transfers() {
            assert_ne!(t.transfer.src, t.transfer.dst);
        }
    }

    #[test]
    fn model_shape_mismatches_are_rejected() {
        let s = spec(2, 2, 1, 0, 1);
        let short = StageModel::split(1 << 20, 1, 1 << 16);
        assert!(lower_parallelism(&s, &short).is_err());
        let zero = StageModel {
            gradient_bytes: vec![0, 1],
            activation_bytes: 1 << 16,
        };
        assert!(lower_parallelism(&s, &zero).is_err());
    }
}
