//! Property tests for Wrht planning, lowering and cost prediction.

use optical_sim::{OpticalConfig, RingSimulator, Strategy};
use proptest::prelude::*;
use wrht_core::cost::predict_time_s;
use wrht_core::lower::{
    to_logical_schedule, to_optical_schedule, to_optical_schedule_with, BroadcastMode,
};
use wrht_core::pipeline::{optimal_segments, segmented_time};
use wrht_core::plan::{build_plan, candidate_plans};
use wrht_core::steps::{ceil_log, paper_step_count};
use wrht_core::{choose_group_size, WrhtParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structure: levels shrink geometrically, groups partition the active
    /// set, representatives are members of their groups.
    #[test]
    fn plan_structure_invariants(n in 1usize..600, m in 2usize..16, w in 1usize..64) {
        prop_assume!(m / 2 <= w);
        let plan = build_plan(n, m, w).unwrap();
        let mut active: Vec<usize> = (0..n).collect();
        for level in &plan.levels {
            let members: Vec<usize> = level
                .groups
                .iter()
                .flat_map(|g| g.members.iter().copied())
                .collect();
            prop_assert_eq!(&members, &active, "groups must partition the active set");
            for g in &level.groups {
                prop_assert!(g.members.contains(&g.rep));
                prop_assert!(g.members.len() <= m);
            }
            active = level.groups.iter().map(|g| g.rep).collect();
        }
        prop_assert_eq!(&active, &plan.final_reps);
        if n >= 2 {
            prop_assert!(plan.alltoall.is_some() || plan.final_reps.len() == 1);
        }
    }

    /// The paper's law: step count never exceeds 2*ceil(log_m N), and the
    /// tree depth never exceeds ceil(log_m N).
    #[test]
    fn step_count_never_exceeds_paper_upper_bound(
        n in 2usize..3000,
        m in 2usize..16,
        w in 1usize..64,
    ) {
        prop_assume!(m / 2 <= w);
        let plan = build_plan(n, m, w).unwrap();
        prop_assert!(plan.step_count() <= paper_step_count(n, m, false).max(1));
        prop_assert!(plan.depth() <= ceil_log(n, m) as usize);
    }

    /// Cost prediction equals stepped simulation for arbitrary parameters.
    #[test]
    fn prediction_matches_simulation(
        n in 2usize..200,
        m in 2usize..12,
        w in 1usize..48,
        kb in 1u64..4096,
    ) {
        prop_assume!(m / 2 <= w);
        let plan = build_plan(n, m, w).unwrap();
        let bytes = kb * 1024;
        let cfg = OpticalConfig::new(n.max(2), w);
        let predicted = predict_time_s(&plan, &cfg, bytes).total_s();
        let mut sim = RingSimulator::new(cfg);
        let simulated = sim
            .run_stepped(&to_optical_schedule(&plan, bytes), Strategy::FirstFit)
            .unwrap()
            .total_time_s;
        if simulated > 0.0 {
            prop_assert!(((predicted - simulated) / simulated).abs() < 1e-9);
        } else {
            prop_assert!(predicted == 0.0);
        }
    }

    /// The optical lowering always fits the configured wavelength budget.
    #[test]
    fn lowered_schedules_fit_their_budget(
        n in 2usize..300,
        m in 2usize..16,
        w in 1usize..64,
    ) {
        prop_assume!(m / 2 <= w);
        let plan = build_plan(n, m, w).unwrap();
        let sched = to_optical_schedule(&plan, 1 << 16);
        let mut sim = RingSimulator::new(OpticalConfig::new(n.max(2), w));
        let report = sim.run_stepped(&sched, Strategy::FirstFit).unwrap();
        prop_assert!(report.stats.peak_wavelengths() <= w);
    }

    /// Logical and optical lowerings always agree on step structure.
    #[test]
    fn lowerings_agree_on_shape(n in 1usize..300, m in 2usize..12, w in 1usize..32) {
        prop_assume!(m / 2 <= w);
        let plan = build_plan(n, m, w).unwrap();
        let optical = to_optical_schedule(&plan, 64);
        let logical = to_logical_schedule(&plan, 8);
        prop_assert_eq!(optical.len(), logical.step_count());
        for (o, l) in optical.steps().iter().zip(&logical.steps) {
            prop_assert_eq!(o.len(), l.transfers.len());
        }
    }

    /// Every candidate plan is itself a correct all-reduce, and candidates
    /// are ordered by strictly increasing depth with the paper's plan first.
    #[test]
    fn all_candidate_plans_are_correct(n in 2usize..150, m in 2usize..10, w in 1usize..32) {
        prop_assume!(m / 2 <= w);
        let candidates = candidate_plans(n, m, w).unwrap();
        prop_assert!(!candidates.is_empty());
        prop_assert_eq!(&candidates[0], &build_plan(n, m, w).unwrap());
        let mut last_depth = None;
        for c in &candidates {
            if let Some(d) = last_depth {
                prop_assert!(c.depth() > d);
            }
            last_depth = Some(c.depth());
            let sched = to_logical_schedule(c, 6);
            collectives::verify_allreduce(&sched).unwrap();
        }
        // The run-to-root candidate is last and unique.
        prop_assert!(candidates.last().unwrap().alltoall.is_none());
        prop_assert_eq!(
            candidates.iter().filter(|c| c.alltoall.is_none()).count(),
            1
        );
    }

    /// Multicast broadcast lowering stays within the wavelength budget and
    /// never exceeds the unicast time.
    #[test]
    fn multicast_fits_and_does_not_hurt(
        n in 4usize..150,
        m in 2usize..10,
        w in 1usize..32,
        kb in 1u64..2048,
    ) {
        prop_assume!(m / 2 <= w);
        let plan = build_plan(n, m, w).unwrap();
        let bytes = kb * 1024;
        let cfg = OpticalConfig::new(n, w);
        let mut sim = RingSimulator::new(cfg);
        let uni = sim
            .run_stepped(
                &to_optical_schedule_with(&plan, bytes, BroadcastMode::Unicast),
                Strategy::FirstFit,
            )
            .unwrap();
        let mc = sim
            .run_stepped(
                &to_optical_schedule_with(&plan, bytes, BroadcastMode::Multicast),
                Strategy::FirstFit,
            )
            .unwrap();
        prop_assert!(mc.stats.peak_wavelengths() <= w);
        prop_assert!(mc.total_time_s <= uni.total_time_s * (1.0 + 1e-9));
    }

    /// Segmentation: k = 1 is always feasible, the optimum never loses to
    /// k = 1, and modelled times are monotone in payload size.
    #[test]
    fn segmentation_solver_invariants(
        n in 2usize..120,
        m in 2usize..10,
        w in 1usize..32,
        kb in 1u64..4096,
    ) {
        prop_assume!(m / 2 <= w);
        let plan = build_plan(n, m, w).unwrap();
        let cfg = OpticalConfig::new(n.max(2), w);
        let bytes = kb * 1024;
        let k1 = segmented_time(&plan, &cfg, bytes, 1);
        prop_assert!(k1.feasible);
        let best = optimal_segments(&plan, &cfg, bytes, 16);
        prop_assert!(best.time_s <= k1.time_s + 1e-15);
        let smaller = segmented_time(&plan, &cfg, bytes / 2 + 1, 1);
        prop_assert!(smaller.time_s <= k1.time_s + 1e-15);
    }

    /// The optimizer's choice is optimal within its search space.
    #[test]
    fn optimizer_is_argmin(n in 2usize..150, w in 1usize..32, mb in 1u64..64) {
        let params = WrhtParams::auto(n, w);
        let cfg = OpticalConfig::new(n.max(2), w);
        let bytes = mb << 20;
        let (_, _, best) = choose_group_size(&params, &cfg, bytes).unwrap();
        for m in 2..=params.max_group_size() {
            if let Ok(plan) = build_plan(n, m, w) {
                let cost = predict_time_s(&plan, &cfg, bytes);
                prop_assert!(best.total_s() <= cost.total_s() + 1e-15);
            }
        }
    }
}
