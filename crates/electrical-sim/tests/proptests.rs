//! Property tests for the fluid model: the defining invariants of max-min
//! fairness and flow-level simulation.

use electrical_sim::flow::FlowSpec;
use electrical_sim::graph::LinkId;
use electrical_sim::maxmin::maxmin_rates;
use electrical_sim::sim::run_flows;
use electrical_sim::topology::{fat_tree_two_level, ring, star_cluster};
use electrical_sim::Network;
use proptest::prelude::*;

fn arb_pairs(n: usize, max: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 1..max)
        .prop_map(|v| v.into_iter().filter(|(a, b)| a != b).collect())
}

fn routes(net: &Network, pairs: &[(usize, usize)]) -> Vec<Vec<LinkId>> {
    pairs
        .iter()
        .map(|&(s, d)| net.route(s, d).unwrap())
        .collect()
}

/// Check the two defining max-min properties on an allocation.
fn check_maxmin(net: &Network, flows: &[Vec<LinkId>], rates: &[f64]) {
    let mut load = vec![0.0f64; net.links().len()];
    for (route, &rate) in flows.iter().zip(rates) {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        for &l in route {
            load[l.0] += rate;
        }
    }
    // 1. Feasibility: no link above capacity.
    for (l, &used) in load.iter().enumerate() {
        assert!(
            used <= net.links()[l].capacity_bps * (1.0 + 1e-6),
            "link {l} oversubscribed"
        );
    }
    // 2. Every flow has a saturated bottleneck link.
    for (f, route) in flows.iter().enumerate() {
        let has_bottleneck = route
            .iter()
            .any(|&l| load[l.0] >= net.links()[l.0].capacity_bps * (1.0 - 1e-6));
        assert!(has_bottleneck, "flow {f} could be raised");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn maxmin_invariants_on_star(pairs in arb_pairs(12, 24)) {
        prop_assume!(!pairs.is_empty());
        let net = star_cluster(12, 1e9, 0.0);
        let flows = routes(&net, &pairs);
        let rates = maxmin_rates(&net, &flows);
        check_maxmin(&net, &flows, &rates);
    }

    #[test]
    fn maxmin_invariants_on_ring(pairs in arb_pairs(10, 20)) {
        prop_assume!(!pairs.is_empty());
        let net = ring(10, 2e9, 0.0);
        let flows = routes(&net, &pairs);
        let rates = maxmin_rates(&net, &flows);
        check_maxmin(&net, &flows, &rates);
    }

    #[test]
    fn maxmin_invariants_on_fat_tree(pairs in arb_pairs(16, 20)) {
        prop_assume!(!pairs.is_empty());
        let net = fat_tree_two_level(4, 4, 2, 1e9, 0.0);
        let flows = routes(&net, &pairs);
        let rates = maxmin_rates(&net, &flows);
        check_maxmin(&net, &flows, &rates);
    }

    /// Adding a flow never raises the minimum allocated rate (per-flow
    /// monotonicity does NOT hold for max-min — slowing one flow can free
    /// capacity for another — but the fairness floor is monotone), and the
    /// extended allocation still satisfies the max-min invariants.
    #[test]
    fn maxmin_floor_is_monotone_under_additional_load(
        pairs in arb_pairs(8, 10),
        extra_src in 0usize..8,
        extra_dst in 0usize..8,
    ) {
        prop_assume!(!pairs.is_empty() && extra_src != extra_dst);
        let net = star_cluster(8, 1e9, 0.0);
        let flows = routes(&net, &pairs);
        let before = maxmin_rates(&net, &flows);
        let min_before = before.iter().copied().fold(f64::INFINITY, f64::min);
        let mut extended = flows.clone();
        extended.push(net.route(extra_src, extra_dst).unwrap());
        let after = maxmin_rates(&net, &extended);
        let min_after = after.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(min_after <= min_before * (1.0 + 1e-9));
        check_maxmin(&net, &extended, &after);
    }

    /// Fluid completion time is bounded below by each flow's ideal time
    /// (latency + size/capacity) and every flow does finish.
    #[test]
    fn fluid_run_respects_physics(
        pairs in arb_pairs(10, 12),
        kb in 1u64..500,
    ) {
        prop_assume!(!pairs.is_empty());
        let cap = 1e9;
        let lat = 1e-6;
        let net = star_cluster(10, cap, lat);
        let bytes = kb * 1024;
        let specs: Vec<FlowSpec> = pairs.iter().map(|&(s, d)| FlowSpec::new(s, d, bytes)).collect();
        let report = run_flows(&net, &specs).unwrap();
        let ideal = 2.0 * lat + bytes as f64 / cap;
        for f in &report.flows {
            prop_assert!(f.finish_s >= ideal - 1e-12);
        }
        prop_assert!(report.makespan_s >= ideal - 1e-12);
        // Makespan is also bounded by fully serializing everything through
        // one port.
        let serial = 2.0 * lat + (pairs.len() as u64 * bytes) as f64 / cap;
        prop_assert!(report.makespan_s <= serial + 1e-9);
    }

    /// Identical flows released together finish together (fairness).
    #[test]
    fn identical_contending_flows_finish_together(k in 2usize..8, kb in 1u64..100) {
        let net = star_cluster(k + 1, 1e9, 0.0);
        // k flows all into host 0.
        let specs: Vec<FlowSpec> =
            (1..=k).map(|s| FlowSpec::new(s, 0, kb * 1024)).collect();
        let report = run_flows(&net, &specs).unwrap();
        let first = report.flows[0].finish_s;
        for f in &report.flows {
            prop_assert!((f.finish_s - first).abs() < 1e-9);
        }
        // And they take exactly k times the solo duration.
        let solo = kb as f64 * 1024.0 / 1e9;
        prop_assert!((first - solo * k as f64).abs() / first < 1e-6);
    }
}
