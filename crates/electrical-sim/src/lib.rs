//! # electrical-sim — a flow-level simulator for electrical interconnects
//!
//! The Wrht paper times its electrical baselines (Ring all-reduce and
//! Recursive Doubling) with SimGrid. This crate reimplements the part of
//! SimGrid those experiments rely on: the **fluid model**, in which each
//! active point-to-point flow receives a max-min fair share of every link it
//! crosses and the simulation advances from flow completion to flow
//! completion.
//!
//! Provided pieces:
//!
//! * [`graph::Network`] — directed links with capacity and latency, plus
//!   per-topology routing;
//! * [`topology`] — builders for switched star ("cluster"), ring, full mesh
//!   and two-level fat-tree networks;
//! * [`maxmin`] — progressive-filling max-min fair allocation;
//! * [`sim::FluidSimulator`] — the event loop, with incremental
//!   per-component rate re-solves;
//! * [`runner`] — barrier-stepped ([`runner::run_steps`]) and
//!   dependency-aware ([`runner::run_dag`]) execution of collective
//!   schedules.
//!
//! ```
//! use electrical_sim::prelude::*;
//!
//! let net = star_cluster(4, 12.5e9, 500e-9); // 4 hosts, 100 Gb/s, 0.5 us
//! let mut sim = FluidSimulator::new(net);
//! sim.submit(FlowSpec::new(0, 1, 1_000_000));
//! let report = sim.run().unwrap();
//! assert!(report.makespan_s > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod error;
pub mod flow;
pub mod graph;
pub mod maxmin;
pub mod runner;
pub mod sim;
pub mod stats;
pub mod topology;

/// Common re-exports.
pub mod prelude {
    pub use crate::engine::{FluidEngine, FluidEngineSnapshot};
    pub use crate::error::NetError;
    pub use crate::flow::FlowSpec;
    pub use crate::graph::{LinkId, Network};
    pub use crate::runner::{
        run_dag, run_dag_jobs, run_dag_jobs_faulted, run_steps, DagFlow, DagRunReport,
        FaultDagRunReport, StepTransfer, TenantDagReport,
    };
    pub use crate::sim::{EngineFlow, FluidSimulator, RunReport};
    pub use crate::stats::{offered_load, LoadReport};
    pub use crate::topology::{fat_tree_two_level, full_mesh, ring, star_cluster, torus_2d};
}

pub use engine::{FluidEngine, FluidEngineSnapshot};
pub use error::NetError;
pub use flow::FlowSpec;
pub use graph::{LinkId, Network};
pub use sim::{EngineFlow, FluidSimulator, RunReport};
