//! Flow specifications submitted to the fluid simulator.

use serde::{Deserialize, Serialize};

/// A point-to-point transfer of `bytes` from `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source host.
    pub src: usize,
    /// Destination host.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Release time offset (seconds after the run starts).
    pub release_s_ns: u64,
}

impl FlowSpec {
    /// Flow released at time zero.
    #[must_use]
    pub fn new(src: usize, dst: usize, bytes: u64) -> Self {
        Self {
            src,
            dst,
            bytes,
            release_s_ns: 0,
        }
    }

    /// Flow released `release_s` seconds into the run (stored with
    /// nanosecond granularity so `FlowSpec` stays `Eq`/hashable).
    #[must_use]
    pub fn released_at(src: usize, dst: usize, bytes: u64, release_s: f64) -> Self {
        Self {
            src,
            dst,
            bytes,
            release_s_ns: (release_s * 1e9).round() as u64,
        }
    }

    /// Release time in seconds.
    #[must_use]
    pub fn release_s(&self) -> f64 {
        self.release_s_ns as f64 * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_round_trips() {
        let f = FlowSpec::released_at(0, 1, 100, 1.5e-6);
        assert!((f.release_s() - 1.5e-6).abs() < 1e-12);
        assert_eq!(FlowSpec::new(0, 1, 100).release_s(), 0.0);
    }
}
