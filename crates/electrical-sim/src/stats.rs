//! Offered-load statistics: how a flow set stresses a network.

use crate::error::Result;
use crate::flow::FlowSpec;
use crate::graph::Network;
use serde::{Deserialize, Serialize};

/// Per-link offered load for a flow set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Bytes crossing each link over the whole flow set.
    pub bytes_per_link: Vec<u64>,
    /// Index of the most-loaded link.
    pub hottest_link: usize,
    /// Bytes on the most-loaded link.
    pub hottest_bytes: u64,
}

impl LoadReport {
    /// Mean utilization of links that carry anything, given a run duration.
    #[must_use]
    pub fn mean_busy_utilization(&self, net: &Network, duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            return 0.0;
        }
        let busy: Vec<(usize, u64)> = self
            .bytes_per_link
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, b)| b > 0)
            .collect();
        if busy.is_empty() {
            return 0.0;
        }
        busy.iter()
            .map(|&(l, b)| b as f64 / (net.link(crate::graph::LinkId(l)).capacity_bps * duration_s))
            .sum::<f64>()
            / busy.len() as f64
    }

    /// Serialization lower bound on any run's duration: the hottest link
    /// must carry its bytes at its capacity.
    #[must_use]
    pub fn bottleneck_lower_bound_s(&self, net: &Network) -> f64 {
        self.hottest_bytes as f64
            / net
                .link(crate::graph::LinkId(self.hottest_link))
                .capacity_bps
    }
}

/// Accumulate offered bytes per link for a flow set.
pub fn offered_load(net: &Network, flows: &[FlowSpec]) -> Result<LoadReport> {
    let mut bytes = vec![0u64; net.links().len()];
    for f in flows {
        for l in net.route(f.src, f.dst)? {
            bytes[l.0] += f.bytes;
        }
    }
    let (hottest_link, hottest_bytes) = bytes
        .iter()
        .copied()
        .enumerate()
        .max_by_key(|&(_, b)| b)
        .unwrap_or((0, 0));
    Ok(LoadReport {
        bytes_per_link: bytes,
        hottest_link,
        hottest_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run_flows;
    use crate::topology::star_cluster;

    #[test]
    fn incast_hotspot_is_the_downlink() {
        let net = star_cluster(8, 1e9, 0.0);
        let flows: Vec<FlowSpec> = (1..8).map(|s| FlowSpec::new(s, 0, 1000)).collect();
        let load = offered_load(&net, &flows).unwrap();
        assert_eq!(load.hottest_link, 1); // host 0's downlink (2*0+1)
        assert_eq!(load.hottest_bytes, 7000);
    }

    #[test]
    fn bottleneck_bound_is_respected_by_the_fluid_run() {
        let net = star_cluster(8, 1e9, 0.0);
        let flows: Vec<FlowSpec> = (1..8).map(|s| FlowSpec::new(s, 0, 1_000_000)).collect();
        let load = offered_load(&net, &flows).unwrap();
        let report = run_flows(&net, &flows).unwrap();
        assert!(report.makespan_s >= load.bottleneck_lower_bound_s(&net) - 1e-12);
        // Incast saturates the bound exactly.
        assert!((report.makespan_s - load.bottleneck_lower_bound_s(&net)).abs() < 1e-9);
    }

    #[test]
    fn utilization_of_fully_busy_links_is_one() {
        let net = star_cluster(4, 1e9, 0.0);
        let flows = vec![FlowSpec::new(0, 1, 1_000_000)];
        let load = offered_load(&net, &flows).unwrap();
        let u = load.mean_busy_utilization(&net, 1e-3);
        assert!((u - 1.0).abs() < 1e-9);
        assert_eq!(load.mean_busy_utilization(&net, 0.0), 0.0);
    }

    #[test]
    fn empty_flow_set() {
        let net = star_cluster(4, 1e9, 0.0);
        let load = offered_load(&net, &[]).unwrap();
        assert_eq!(load.hottest_bytes, 0);
        assert_eq!(load.mean_busy_utilization(&net, 1.0), 0.0);
    }
}
