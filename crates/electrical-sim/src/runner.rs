//! Barrier-stepped execution of collective schedules over the fluid model.
//!
//! All-reduce algorithms are expressed as sequences of steps; the runner
//! starts every transfer of a step simultaneously, waits for the slowest
//! (the barrier all-reduce implementations impose), adds a per-message host
//! overhead, and moves to the next step — mirroring how the paper times its
//! SimGrid baselines.

use crate::error::Result;
use crate::flow::FlowSpec;
use crate::graph::Network;
use crate::sim::run_flows;
use serde::{Deserialize, Serialize};

/// One transfer inside a step (sizes in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepTransfer {
    /// Source host.
    pub src: usize,
    /// Destination host.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
}

/// Timing report for a stepped collective run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteppedReport {
    /// Total time, seconds.
    pub total_time_s: f64,
    /// Per-step durations, seconds.
    pub step_times_s: Vec<f64>,
}

/// Execute `steps` over `net`, paying `per_message_overhead_s` once per step
/// (protocol/launch cost, analogous to the optical per-message overhead).
///
/// Zero-byte transfers are legal: the fluid model itself rejects empty
/// flows, so they are skipped before solving, but a step that contains any
/// transfer — even only zero-byte ones — still pays the per-step overhead
/// (the launch happens regardless of payload). Only a literally empty step
/// costs nothing. This mirrors the optical substrate, which charges its
/// per-message overhead for zero-byte transfers too.
pub fn run_steps(
    net: &Network,
    steps: &[Vec<StepTransfer>],
    per_message_overhead_s: f64,
) -> Result<SteppedReport> {
    let mut step_times = Vec::with_capacity(steps.len());
    for step in steps {
        if step.is_empty() {
            step_times.push(0.0);
            continue;
        }
        let flows: Vec<FlowSpec> = step
            .iter()
            .filter(|t| t.bytes > 0)
            .map(|t| FlowSpec::new(t.src, t.dst, t.bytes))
            .collect();
        let makespan_s = if flows.is_empty() {
            0.0
        } else {
            run_flows(net, &flows)?.makespan_s
        };
        step_times.push(per_message_overhead_s + makespan_s);
    }
    Ok(SteppedReport {
        total_time_s: step_times.iter().sum(),
        step_times_s: step_times,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::star_cluster;

    #[test]
    fn steps_are_sequential_and_overhead_is_per_step() {
        let net = star_cluster(4, 1e9, 0.0);
        let steps = vec![
            vec![StepTransfer {
                src: 0,
                dst: 1,
                bytes: 1_000_000,
            }],
            vec![StepTransfer {
                src: 1,
                dst: 2,
                bytes: 1_000_000,
            }],
        ];
        let r = run_steps(&net, &steps, 1e-6).unwrap();
        assert_eq!(r.step_times_s.len(), 2);
        assert!((r.total_time_s - (2e-3 + 2e-6)).abs() < 1e-9);
    }

    #[test]
    fn empty_steps_cost_nothing() {
        let net = star_cluster(4, 1e9, 0.0);
        let r = run_steps(&net, &[vec![]], 1e-6).unwrap();
        assert_eq!(r.total_time_s, 0.0);
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let net = star_cluster(4, 1e9, 0.0);
        let r = run_steps(&net, &[], 1e-6).unwrap();
        assert_eq!(r.total_time_s, 0.0);
        assert!(r.step_times_s.is_empty());
    }

    #[test]
    fn single_step_matches_flow_closed_form() {
        let net = star_cluster(4, 1e9, 0.0);
        let steps = vec![vec![StepTransfer {
            src: 0,
            dst: 1,
            bytes: 3_000_000,
        }]];
        let r = run_steps(&net, &steps, 1e-6).unwrap();
        assert_eq!(r.step_times_s.len(), 1);
        assert!((r.total_time_s - (3e-3 + 1e-6)).abs() < 1e-9);
    }

    #[test]
    fn interior_empty_steps_keep_per_step_alignment() {
        // Campaign and differential consumers zip per-step times against
        // the schedule, so empty steps must keep their slot.
        let net = star_cluster(4, 1e9, 0.0);
        let steps = vec![
            vec![],
            vec![StepTransfer {
                src: 0,
                dst: 1,
                bytes: 1_000_000,
            }],
            vec![],
        ];
        let r = run_steps(&net, &steps, 1e-6).unwrap();
        assert_eq!(r.step_times_s.len(), 3);
        assert_eq!(r.step_times_s[0], 0.0);
        assert_eq!(r.step_times_s[2], 0.0);
        assert!((r.step_times_s[1] - (1e-3 + 1e-6)).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_transfers_are_skipped_but_pay_the_step_overhead() {
        let net = star_cluster(4, 1e9, 0.0);
        // Mixed step: the zero-byte transfer adds no serialization time.
        let mixed = vec![
            vec![
                StepTransfer {
                    src: 0,
                    dst: 1,
                    bytes: 0,
                },
                StepTransfer {
                    src: 2,
                    dst: 3,
                    bytes: 1_000_000,
                },
            ],
            // All-zero step: the launch overhead is still paid.
            vec![StepTransfer {
                src: 1,
                dst: 2,
                bytes: 0,
            }],
        ];
        let r = run_steps(&net, &mixed, 1e-6).unwrap();
        assert!((r.step_times_s[0] - (1e-3 + 1e-6)).abs() < 1e-9);
        assert!((r.step_times_s[1] - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn parallel_transfers_within_a_step() {
        let net = star_cluster(4, 1e9, 0.0);
        let step = vec![
            StepTransfer {
                src: 0,
                dst: 1,
                bytes: 1_000_000,
            },
            StepTransfer {
                src: 2,
                dst: 3,
                bytes: 1_000_000,
            },
        ];
        let r = run_steps(&net, &[step], 0.0).unwrap();
        assert!((r.total_time_s - 1e-3).abs() < 1e-9);
    }
}
