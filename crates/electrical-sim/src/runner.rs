//! Barrier-stepped execution of collective schedules over the fluid model.
//!
//! All-reduce algorithms are expressed as sequences of steps; the runner
//! starts every transfer of a step simultaneously, waits for the slowest
//! (the barrier all-reduce implementations impose), adds a per-message host
//! overhead, and moves to the next step — mirroring how the paper times its
//! SimGrid baselines.

use crate::error::Result;
use crate::flow::FlowSpec;
use crate::graph::Network;
use crate::sim::{run_engine, run_engine_faulted, run_flows, EngineFault, EngineFlow};
use serde::{Deserialize, Serialize};
use wrht_kernel::{FaultKind, FaultLimits, FaultPolicy, FaultScript};

/// One transfer inside a step (sizes in bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepTransfer {
    /// Source host.
    pub src: usize,
    /// Destination host.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
}

/// Timing report for a stepped collective run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteppedReport {
    /// Total time, seconds.
    pub total_time_s: f64,
    /// Per-step durations, seconds.
    pub step_times_s: Vec<f64>,
}

/// Execute `steps` over `net`, paying `per_message_overhead_s` once per step
/// (protocol/launch cost, analogous to the optical per-message overhead).
///
/// Zero-byte transfers are legal: the fluid model itself rejects empty
/// flows, so they are skipped before solving, but a step that contains any
/// transfer — even only zero-byte ones — still pays the per-step overhead
/// (the launch happens regardless of payload). Only a literally empty step
/// costs nothing. This mirrors the optical substrate, which charges its
/// per-message overhead for zero-byte transfers too.
pub fn run_steps(
    net: &Network,
    steps: &[Vec<StepTransfer>],
    per_message_overhead_s: f64,
) -> Result<SteppedReport> {
    let mut step_times = Vec::with_capacity(steps.len());
    for step in steps {
        if step.is_empty() {
            step_times.push(0.0);
            continue;
        }
        let flows: Vec<FlowSpec> = step
            .iter()
            .filter(|t| t.bytes > 0)
            .map(|t| FlowSpec::new(t.src, t.dst, t.bytes))
            .collect();
        let makespan_s = if flows.is_empty() {
            0.0
        } else {
            run_flows(net, &flows)?.makespan_s
        };
        step_times.push(per_message_overhead_s + makespan_s);
    }
    Ok(SteppedReport {
        total_time_s: step_times.iter().sum(),
        step_times_s: step_times,
    })
}

/// One transfer of a dependency-aware schedule: a [`StepTransfer`] plus
/// explicit predecessor edges, an absolute release time and the source
/// stage (step or bucket-step) it was lowered from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagFlow {
    /// Source host.
    pub src: usize,
    /// Destination host.
    pub dst: usize,
    /// Payload bytes. 0 is legal and makes the transfer a pure control
    /// gate: it completes after the launch overhead alone — no latency,
    /// no bandwidth competition — but still gates its dependents. This
    /// mirrors the stepped runner, which skips zero-byte flows while
    /// charging the launch overhead.
    pub bytes: u64,
    /// Earliest release time, seconds (gradient-ready instants and the
    /// like); 0 for purely dependency-driven transfers.
    pub release_s: f64,
    /// Indices of transfers that must complete first (each `<` own index,
    /// so the list is a DAG in topological order by construction).
    pub deps: Vec<usize>,
    /// Source stage the transfer was lowered from (used to detect
    /// barrier-shaped DAGs and for per-stage reporting). Must be
    /// non-decreasing along the transfer list.
    pub stage: usize,
}

/// Timing report for a dependency-aware run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagRunReport {
    /// Completion time of the last transfer, seconds.
    pub makespan_s: f64,
    /// Per-transfer `(start, finish)` windows in submission order. `start`
    /// is the instant the transfer's gates opened (dependencies and
    /// release satisfied), before its launch overhead.
    pub windows: Vec<(f64, f64)>,
    /// Rate solver invocations (see [`crate::sim::RunReport`]).
    pub rate_recomputations: usize,
    /// Progressive-filling work units (see [`crate::sim::RunReport`]).
    pub solver_work: usize,
    /// Discrete events processed by the shared kernel (summed over the
    /// per-stage fluid runs on the barrier fast path).
    pub events: u64,
    /// Whether the run took the barrier fast path (per-stage fluid runs
    /// composed exactly like [`run_steps`]) instead of the event engine.
    pub barrier_fast_path: bool,
}

/// If `flows` encodes full step barriers — stages non-decreasing, every
/// release at 0, and every transfer depending on exactly the previous
/// non-empty stage — return the per-stage index lists.
fn barrier_stages(flows: &[DagFlow]) -> Option<Vec<Vec<usize>>> {
    // wrht-analyze: allow(r6, reason = "exact-zero sentinel: barrier DAGs carry the literal 0.0 release, never a computed value")
    if flows.iter().any(|f| f.release_s != 0.0) {
        return None;
    }
    let mut stages: Vec<Vec<usize>> = Vec::new();
    for (i, f) in flows.iter().enumerate() {
        if f.stage + 1 < stages.len() {
            return None; // stages must be non-decreasing
        }
        if f.stage >= stages.len() {
            stages.resize_with(f.stage + 1, Vec::new);
        }
        stages[f.stage].push(i);
    }
    let mut prev: &[usize] = &[];
    for stage in &stages {
        for &i in stage {
            if flows[i].deps != prev {
                return None;
            }
        }
        if !stage.is_empty() {
            prev = stage;
        }
    }
    Some(stages)
}

/// Execute a dependency-aware schedule over `net`.
///
/// Barrier-shaped inputs (each transfer gated on the whole previous
/// stage, no release times) take a fast path that runs one fluid solve
/// per stage and composes stage times exactly like [`run_steps`] — so a
/// DAG encoding full step barriers reproduces the stepped runner's total
/// **bit-exactly**. Everything else goes through the event-driven engine:
/// transfers released the instant their last predecessor completes, rates
/// re-solved incrementally only over the contention component whose
/// active-flow set changed.
///
/// `per_message_overhead_s` is charged once per transfer after its gates
/// open (per non-empty stage on the fast path, matching [`run_steps`]).
pub fn run_dag(
    net: &Network,
    flows: &[DagFlow],
    per_message_overhead_s: f64,
) -> Result<DagRunReport> {
    if let Some(stages) = barrier_stages(flows) {
        return run_dag_barrier(net, flows, &stages, per_message_overhead_s);
    }
    run_dag_event_driven(net, flows, per_message_overhead_s)
}

/// The barrier fast path: per-stage fluid runs composed like [`run_steps`].
fn run_dag_barrier(
    net: &Network,
    flows: &[DagFlow],
    stages: &[Vec<usize>],
    per_message_overhead_s: f64,
) -> Result<DagRunReport> {
    let mut windows = vec![(0.0, 0.0); flows.len()];
    let mut recomputations = 0usize;
    let mut solver_work = 0usize;
    let mut events = 0u64;
    let mut base = 0.0f64;
    for stage in stages {
        if stage.is_empty() {
            continue;
        }
        let payload: Vec<usize> = stage
            .iter()
            .copied()
            .filter(|&i| flows[i].bytes > 0)
            .collect();
        let specs: Vec<FlowSpec> = payload
            .iter()
            .map(|&i| FlowSpec::new(flows[i].src, flows[i].dst, flows[i].bytes))
            .collect();
        let makespan_s = if specs.is_empty() {
            0.0
        } else {
            let report = run_flows(net, &specs)?;
            recomputations += report.rate_recomputations;
            solver_work += report.solver_work;
            events += report.events;
            for (&i, outcome) in payload.iter().zip(&report.flows) {
                windows[i] = (base, base + per_message_overhead_s + outcome.finish_s);
            }
            report.makespan_s
        };
        for &i in stage {
            if flows[i].bytes == 0 {
                // Zero-byte control gates are validated like every other
                // flow (the event engine routes them too) and finish after
                // the launch only — within the stage's overhead slot, so
                // the next stage's base never precedes them.
                net.route(flows[i].src, flows[i].dst)?;
                windows[i] = (base, base + per_message_overhead_s);
            }
        }
        // The exact arithmetic of run_steps: each non-empty stage adds
        // fl(overhead + makespan) to a left-fold running total.
        base += per_message_overhead_s + makespan_s;
    }
    Ok(DagRunReport {
        makespan_s: base,
        windows,
        rate_recomputations: recomputations,
        solver_work,
        events,
        barrier_fast_path: true,
    })
}

/// A [`DagRunReport`] plus per-tenant rate attribution from the max-min
/// solver (see [`run_dag_jobs`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantDagReport {
    /// The underlying dependency-aware run.
    pub report: DagRunReport,
    /// Per job: total time with at least one transmitting flow, seconds.
    /// Zeros when the run took the barrier fast path (the stepped
    /// composition has no per-interval rate solution to attribute).
    pub job_active_s: Vec<f64>,
    /// Per job: bytes delivered over the fabric (`∫ aggregate rate dt` on
    /// the event engine; the exact payload sum on the barrier fast path).
    pub job_service_bytes: Vec<f64>,
    /// Per job: largest aggregate max-min allocation ever held, bytes/s
    /// (0 on the barrier fast path).
    pub job_peak_rate_bps: Vec<f64>,
}

/// Execute a **multi-job** dependency-aware schedule over `net`.
///
/// Timing is identical to [`run_dag`] on the same flows — the max-min fluid
/// model is inherently fair-shared, so tenancy policies do not change
/// electrical rates — but every flow carries a job tag (`job_of[i]`, each
/// `< jobs`) and the incremental solver attributes its rate solution to
/// jobs: aggregate allocated bandwidth integrated between events, active
/// transmission time and peak aggregate allocation per tenant.
pub fn run_dag_jobs(
    net: &Network,
    flows: &[DagFlow],
    job_of: &[usize],
    jobs: usize,
    per_message_overhead_s: f64,
) -> Result<TenantDagReport> {
    if job_of.len() != flows.len() {
        return Err(crate::error::NetError::BadConfig(
            "job tag list must match the flow list",
        ));
    }
    if job_of.iter().any(|&j| j >= jobs) {
        return Err(crate::error::NetError::BadConfig(
            "job tag out of range of the job count",
        ));
    }
    if let Some(stages) = barrier_stages(flows) {
        // Keep the stepped fast path so single-tenant barrier DAGs stay
        // bit-exact with `run_dag`/`run_steps`; delivered bytes are exact,
        // rates are reported as zeros (documented on the fields).
        let report = run_dag_barrier(net, flows, &stages, per_message_overhead_s)?;
        let mut service = vec![0.0f64; jobs];
        for (f, &j) in flows.iter().zip(job_of) {
            service[j] += f.bytes as f64;
        }
        return Ok(TenantDagReport {
            report,
            job_active_s: vec![0.0; jobs],
            job_service_bytes: service,
            job_peak_rate_bps: vec![0.0; jobs],
        });
    }
    let engine_flows: Vec<EngineFlow> = flows
        .iter()
        .zip(job_of)
        .map(|(f, &job)| EngineFlow {
            src: f.src,
            dst: f.dst,
            bytes: f.bytes,
            release_s: f.release_s,
            delay_s: per_message_overhead_s,
            deps: f.deps.clone(),
            job,
        })
        .collect();
    let r = run_engine(net, &engine_flows)?;
    let pad = |mut v: Vec<f64>| {
        v.resize(jobs, 0.0);
        v
    };
    Ok(TenantDagReport {
        report: DagRunReport {
            makespan_s: r.makespan_s,
            windows: r.outcomes.iter().map(|o| (o.start_s, o.finish_s)).collect(),
            rate_recomputations: r.rate_recomputations,
            solver_work: r.solver_work,
            events: r.events,
            barrier_fast_path: false,
        },
        job_active_s: pad(r.job_active_s),
        job_service_bytes: pad(r.job_service_bytes),
        job_peak_rate_bps: pad(r.job_peak_rate_bps),
    })
}

/// Result of a faulted dependency-aware run ([`run_dag_jobs_faulted`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultDagRunReport {
    /// The clean report shape. Failed transfers keep a zero finish in
    /// their window and are excluded from the makespan.
    pub tenant: TenantDagReport,
    /// Per-transfer: permanently failed by a fault.
    pub failed: Vec<bool>,
    /// Per-transfer: times the transfer was killed while actively
    /// transmitting.
    pub aborted: Vec<u32>,
    /// Instant the first transfer was failed by a fault, if any.
    pub first_impact_s: Option<f64>,
}

impl FaultDagRunReport {
    /// Number of transfers that never completed.
    #[must_use]
    pub fn failed_transfers(&self) -> usize {
        self.failed.iter().filter(|&&f| f).count()
    }
}

/// Execute a (multi-job) dependency-aware schedule under a [`FaultScript`]
/// with the given recovery [`FaultPolicy`].
///
/// Electrically relevant kinds: `LinkDegrade { factor }` multiplies the
/// link's capacity from the fault instant onward and triggers an
/// incremental per-component max-min re-solve at that instant; `LinkFlap`
/// lowers to a capacity-zero interval (crossing flows are *suspended* —
/// fluid progress freezes and resumes on restore, so nothing is lost);
/// `NodeDown` permanently fails every unfinished flow touching the node
/// (whole-job failure under [`FaultPolicy::FailJob`], survivor re-planning
/// of dependents under `RetryAfter`/`Replan`); `NodeStraggle` caps flows
/// touching the node at `1/slowdown` of their max-min share. Wavelength
/// events have no electrical meaning and are ignored.
///
/// With no relevant events the run delegates to [`run_dag_jobs`] —
/// including its barrier fast path — and is **bit-exact** with the clean
/// entry points. Single-job callers pass `job_of = [0; n], jobs = 1`.
pub fn run_dag_jobs_faulted(
    net: &Network,
    flows: &[DagFlow],
    job_of: &[usize],
    jobs: usize,
    per_message_overhead_s: f64,
    script: &FaultScript,
    policy: FaultPolicy,
) -> Result<FaultDagRunReport> {
    if job_of.len() != flows.len() {
        return Err(crate::error::NetError::BadConfig(
            "job tag list must match the flow list",
        ));
    }
    if job_of.iter().any(|&j| j >= jobs) {
        return Err(crate::error::NetError::BadConfig(
            "job tag out of range of the job count",
        ));
    }
    let limits = FaultLimits {
        nodes: net.hosts(),
        wavelengths: None,
        links: Some(net.links().len()),
    };
    script.validate(&limits)?;
    policy.validate()?;

    let mut faults: Vec<(f64, EngineFault)> = Vec::new();
    for ev in script.events() {
        match ev.kind {
            FaultKind::LinkDegrade { link, factor } => {
                // A full-capacity "degrade" on a link no other event
                // disturbs is a no-op; dropping it keeps such scripts
                // bit-exact with the clean run (an extra kernel instant
                // would otherwise split fluid intervals and can perturb
                // completion times in the last ulp).
                let lone_restore = factor >= 1.0
                    && !script.events().iter().any(|other| {
                        matches!(other.kind,
                            FaultKind::LinkDegrade { link: l, factor: f } if l == link && f < 1.0)
                            || matches!(other.kind,
                                FaultKind::LinkFlap { link: l, .. } if l == link)
                    });
                if !lone_restore {
                    faults.push((ev.at_s, EngineFault::SetLinkFactor { link, factor }));
                }
            }
            FaultKind::LinkFlap { link, down_s } => {
                // Dark for `down_s`, then back to full capacity (a flap
                // restore forgets any earlier degrade on the same link).
                faults.push((ev.at_s, EngineFault::SetLinkFactor { link, factor: 0.0 }));
                faults.push((
                    ev.at_s + down_s,
                    EngineFault::SetLinkFactor { link, factor: 1.0 },
                ));
            }
            FaultKind::NodeDown { node } => {
                faults.push((ev.at_s, EngineFault::NodeDown { node }));
            }
            FaultKind::NodeStraggle { node, slowdown } => {
                faults.push((ev.at_s, EngineFault::Straggle { node, slowdown }));
            }
            // Wavelengths are an optical concept; no electrical meaning.
            FaultKind::WavelengthDown { .. } | FaultKind::WavelengthUp { .. } => {}
        }
    }
    if faults.is_empty() {
        // Zero relevant faults: the clean entry point (barrier fast path
        // included), bit-exactly.
        let tenant = run_dag_jobs(net, flows, job_of, jobs, per_message_overhead_s)?;
        return Ok(FaultDagRunReport {
            failed: vec![false; flows.len()],
            aborted: vec![0; flows.len()],
            first_impact_s: None,
            tenant,
        });
    }

    let engine_flows: Vec<EngineFlow> = flows
        .iter()
        .zip(job_of)
        .map(|(f, &job)| EngineFlow {
            src: f.src,
            dst: f.dst,
            bytes: f.bytes,
            release_s: f.release_s,
            delay_s: per_message_overhead_s,
            deps: f.deps.clone(),
            job,
        })
        .collect();
    let r = run_engine_faulted(net, &engine_flows, &faults, policy)?;
    let pad = |mut v: Vec<f64>| {
        v.resize(jobs, 0.0);
        v
    };
    Ok(FaultDagRunReport {
        tenant: TenantDagReport {
            report: DagRunReport {
                makespan_s: r.base.makespan_s,
                windows: r
                    .base
                    .outcomes
                    .iter()
                    .map(|o| (o.start_s, o.finish_s))
                    .collect(),
                rate_recomputations: r.base.rate_recomputations,
                solver_work: r.base.solver_work,
                events: r.base.events,
                barrier_fast_path: false,
            },
            job_active_s: pad(r.base.job_active_s),
            job_service_bytes: pad(r.base.job_service_bytes),
            job_peak_rate_bps: pad(r.base.job_peak_rate_bps),
        },
        failed: r.failed,
        aborted: r.aborted,
        first_impact_s: r.first_impact_s,
    })
}

/// Execute a dependency-aware schedule strictly through the event-driven
/// engine, bypassing the barrier fast path. Used by differential tests and
/// benchmarks; [`run_dag`] is the production entry point.
pub fn run_dag_event_driven(
    net: &Network,
    flows: &[DagFlow],
    per_message_overhead_s: f64,
) -> Result<DagRunReport> {
    let engine_flows: Vec<EngineFlow> = flows
        .iter()
        .map(|f| EngineFlow {
            src: f.src,
            dst: f.dst,
            bytes: f.bytes,
            release_s: f.release_s,
            delay_s: per_message_overhead_s,
            deps: f.deps.clone(),
            job: 0,
        })
        .collect();
    let report = run_engine(net, &engine_flows)?;
    Ok(DagRunReport {
        makespan_s: report.makespan_s,
        windows: report
            .outcomes
            .iter()
            .map(|o| (o.start_s, o.finish_s))
            .collect(),
        rate_recomputations: report.rate_recomputations,
        solver_work: report.solver_work,
        events: report.events,
        barrier_fast_path: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::star_cluster;

    #[test]
    fn steps_are_sequential_and_overhead_is_per_step() {
        let net = star_cluster(4, 1e9, 0.0);
        let steps = vec![
            vec![StepTransfer {
                src: 0,
                dst: 1,
                bytes: 1_000_000,
            }],
            vec![StepTransfer {
                src: 1,
                dst: 2,
                bytes: 1_000_000,
            }],
        ];
        let r = run_steps(&net, &steps, 1e-6).unwrap();
        assert_eq!(r.step_times_s.len(), 2);
        assert!((r.total_time_s - (2e-3 + 2e-6)).abs() < 1e-9);
    }

    #[test]
    fn empty_steps_cost_nothing() {
        let net = star_cluster(4, 1e9, 0.0);
        let r = run_steps(&net, &[vec![]], 1e-6).unwrap();
        assert_eq!(r.total_time_s, 0.0);
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let net = star_cluster(4, 1e9, 0.0);
        let r = run_steps(&net, &[], 1e-6).unwrap();
        assert_eq!(r.total_time_s, 0.0);
        assert!(r.step_times_s.is_empty());
    }

    #[test]
    fn single_step_matches_flow_closed_form() {
        let net = star_cluster(4, 1e9, 0.0);
        let steps = vec![vec![StepTransfer {
            src: 0,
            dst: 1,
            bytes: 3_000_000,
        }]];
        let r = run_steps(&net, &steps, 1e-6).unwrap();
        assert_eq!(r.step_times_s.len(), 1);
        assert!((r.total_time_s - (3e-3 + 1e-6)).abs() < 1e-9);
    }

    #[test]
    fn interior_empty_steps_keep_per_step_alignment() {
        // Campaign and differential consumers zip per-step times against
        // the schedule, so empty steps must keep their slot.
        let net = star_cluster(4, 1e9, 0.0);
        let steps = vec![
            vec![],
            vec![StepTransfer {
                src: 0,
                dst: 1,
                bytes: 1_000_000,
            }],
            vec![],
        ];
        let r = run_steps(&net, &steps, 1e-6).unwrap();
        assert_eq!(r.step_times_s.len(), 3);
        assert_eq!(r.step_times_s[0], 0.0);
        assert_eq!(r.step_times_s[2], 0.0);
        assert!((r.step_times_s[1] - (1e-3 + 1e-6)).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_transfers_are_skipped_but_pay_the_step_overhead() {
        let net = star_cluster(4, 1e9, 0.0);
        // Mixed step: the zero-byte transfer adds no serialization time.
        let mixed = vec![
            vec![
                StepTransfer {
                    src: 0,
                    dst: 1,
                    bytes: 0,
                },
                StepTransfer {
                    src: 2,
                    dst: 3,
                    bytes: 1_000_000,
                },
            ],
            // All-zero step: the launch overhead is still paid.
            vec![StepTransfer {
                src: 1,
                dst: 2,
                bytes: 0,
            }],
        ];
        let r = run_steps(&net, &mixed, 1e-6).unwrap();
        assert!((r.step_times_s[0] - (1e-3 + 1e-6)).abs() < 1e-9);
        assert!((r.step_times_s[1] - 1e-6).abs() < 1e-15);
    }

    /// Lower `steps` to the barrier-shaped DAG (every transfer gated on
    /// the whole previous non-empty step).
    fn barrier_dag(steps: &[Vec<StepTransfer>]) -> Vec<DagFlow> {
        let mut flows = Vec::new();
        let mut prev: Vec<usize> = Vec::new();
        for (stage, step) in steps.iter().enumerate() {
            let first = flows.len();
            for t in step {
                flows.push(DagFlow {
                    src: t.src,
                    dst: t.dst,
                    bytes: t.bytes,
                    release_s: 0.0,
                    deps: prev.clone(),
                    stage,
                });
            }
            if !step.is_empty() {
                prev = (first..flows.len()).collect();
            }
        }
        flows
    }

    #[test]
    fn barrier_dag_matches_run_steps_bit_exactly() {
        let net = star_cluster(8, 1e9, 500e-9);
        let steps = vec![
            vec![
                StepTransfer {
                    src: 0,
                    dst: 1,
                    bytes: 1_000_000,
                },
                StepTransfer {
                    src: 0,
                    dst: 2,
                    bytes: 700_000,
                },
            ],
            vec![],
            vec![StepTransfer {
                src: 2,
                dst: 3,
                bytes: 2_000_000,
            }],
        ];
        let stepped = run_steps(&net, &steps, 5e-6).unwrap();
        let dag = run_dag(&net, &barrier_dag(&steps), 5e-6).unwrap();
        assert!(dag.barrier_fast_path);
        assert_eq!(dag.makespan_s.to_bits(), stepped.total_time_s.to_bits());
    }

    #[test]
    fn pipelined_dag_is_never_slower_than_the_barrier() {
        let net = star_cluster(8, 1e9, 0.0);
        let steps = vec![
            vec![StepTransfer {
                src: 0,
                dst: 1,
                bytes: 1_000_000,
            }],
            vec![StepTransfer {
                src: 2,
                dst: 3,
                bytes: 1_000_000,
            }],
        ];
        let barrier = run_steps(&net, &steps, 0.0).unwrap();
        // Drop the cross-step edge: the two disjoint transfers overlap.
        let mut flows = barrier_dag(&steps);
        flows[1].deps.clear();
        let dag = run_dag(&net, &flows, 0.0).unwrap();
        assert!(!dag.barrier_fast_path);
        assert!((dag.makespan_s - 1e-3).abs() < 1e-12);
        assert!(dag.makespan_s <= barrier.total_time_s);
    }

    #[test]
    fn event_driven_barrier_dag_agrees_with_fast_path() {
        let net = star_cluster(8, 1e9, 500e-9);
        let steps = vec![
            vec![
                StepTransfer {
                    src: 0,
                    dst: 1,
                    bytes: 1_000_000,
                },
                StepTransfer {
                    src: 2,
                    dst: 1,
                    bytes: 500_000,
                },
            ],
            vec![StepTransfer {
                src: 1,
                dst: 4,
                bytes: 1_500_000,
            }],
        ];
        let flows = barrier_dag(&steps);
        let fast = run_dag(&net, &flows, 5e-6).unwrap();
        let event = run_dag_event_driven(&net, &flows, 5e-6).unwrap();
        assert!(fast.barrier_fast_path && !event.barrier_fast_path);
        assert!(
            (fast.makespan_s - event.makespan_s).abs() / fast.makespan_s < 1e-9,
            "fast {} vs event {}",
            fast.makespan_s,
            event.makespan_s
        );
    }

    #[test]
    fn dag_release_times_gate_transfers() {
        let net = star_cluster(4, 1e9, 0.0);
        let flows = vec![DagFlow {
            src: 0,
            dst: 1,
            bytes: 1_000_000,
            release_s: 2e-3,
            deps: vec![],
            stage: 0,
        }];
        let dag = run_dag(&net, &flows, 0.0).unwrap();
        assert!(!dag.barrier_fast_path);
        assert!((dag.makespan_s - 3e-3).abs() < 1e-12);
        assert!((dag.windows[0].0 - 2e-3).abs() < 1e-12);
    }

    /// Regression (review finding): with latency links and zero-byte
    /// gates, the fast path and the event engine must agree, every
    /// dependent's window must start at or after its dependency's finish,
    /// and no window may end past the makespan.
    #[test]
    fn zero_byte_gates_on_latency_links_keep_engines_and_causality_consistent() {
        let net = star_cluster(4, 1e9, 1e-6);
        let flows = vec![
            DagFlow {
                src: 0,
                dst: 1,
                bytes: 0,
                release_s: 0.0,
                deps: vec![],
                stage: 0,
            },
            DagFlow {
                src: 1,
                dst: 2,
                bytes: 1_000_000,
                release_s: 0.0,
                deps: vec![0],
                stage: 1,
            },
        ];
        for overhead in [0.0, 5e-6] {
            let fast = run_dag(&net, &flows, overhead).unwrap();
            let event = run_dag_event_driven(&net, &flows, overhead).unwrap();
            assert!(fast.barrier_fast_path && !event.barrier_fast_path);
            for r in [&fast, &event] {
                assert!(
                    r.windows[1].0 >= r.windows[0].1 - 1e-15,
                    "dependent starts at {} before its gate finishes at {}",
                    r.windows[1].0,
                    r.windows[0].1
                );
                for &(_, finish) in &r.windows {
                    assert!(finish <= r.makespan_s + 1e-15);
                }
            }
            let scale = fast.makespan_s.max(1e-30);
            assert!(
                (fast.makespan_s - event.makespan_s).abs() / scale < 1e-9,
                "overhead {overhead}: fast {} vs event {}",
                fast.makespan_s,
                event.makespan_s
            );
        }
    }

    /// Regression (review finding): an unroutable zero-byte gate in a
    /// mixed stage must fail on the fast path exactly as it does in the
    /// event engine, not be silently accepted.
    #[test]
    fn fast_path_validates_zero_byte_routes_in_mixed_stages() {
        let net = star_cluster(4, 1e9, 0.0);
        let flows = vec![
            DagFlow {
                src: 0,
                dst: 1,
                bytes: 1_000_000,
                release_s: 0.0,
                deps: vec![],
                stage: 0,
            },
            DagFlow {
                src: 2,
                dst: 2, // self-flow: unroutable
                bytes: 0,
                release_s: 0.0,
                deps: vec![],
                stage: 0,
            },
        ];
        let fast = run_dag(&net, &flows, 0.0);
        let event = run_dag_event_driven(&net, &flows, 0.0);
        assert_eq!(fast.unwrap_err(), crate::error::NetError::SelfFlow(2));
        assert_eq!(event.unwrap_err(), crate::error::NetError::SelfFlow(2));
    }

    #[test]
    fn zero_byte_dag_transfers_gate_but_cost_only_overhead() {
        let net = star_cluster(4, 1e9, 0.0);
        let flows = vec![
            DagFlow {
                src: 0,
                dst: 1,
                bytes: 0,
                release_s: 0.0,
                deps: vec![],
                stage: 0,
            },
            DagFlow {
                src: 1,
                dst: 2,
                bytes: 1_000_000,
                release_s: 0.0,
                deps: vec![0],
                stage: 1,
            },
        ];
        let dag = run_dag(&net, &flows, 1e-6).unwrap();
        // Zero-byte gate completes after its 1 us launch; the dependent
        // pays its own launch then 1 ms of serialization.
        assert!((dag.makespan_s - (2e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn parallel_transfers_within_a_step() {
        let net = star_cluster(4, 1e9, 0.0);
        let step = vec![
            StepTransfer {
                src: 0,
                dst: 1,
                bytes: 1_000_000,
            },
            StepTransfer {
                src: 2,
                dst: 3,
                bytes: 1_000_000,
            },
        ];
        let r = run_steps(&net, &[step], 0.0).unwrap();
        assert!((r.total_time_s - 1e-3).abs() < 1e-9);
    }
}
