//! Topology builders.
//!
//! All builders take per-link `capacity_bps` in **bytes** per second and
//! `latency_s` in seconds, matching SimGrid's platform files after unit
//! conversion.
//!
//! ```
//! use electrical_sim::topology::{ring, star_cluster};
//!
//! let star = star_cluster(8, 12.5e9, 500e-9);
//! assert_eq!(star.hosts(), 8);
//! // A route in the star crosses the sender's uplink and receiver's downlink.
//! assert_eq!(star.route(0, 5).unwrap().len(), 2);
//! // In the ring, neighbours are one directed link apart.
//! assert_eq!(ring(8, 12.5e9, 0.0).route(3, 4).unwrap().len(), 1);
//! ```

use crate::graph::{Link, Network, Router};

/// A switched cluster: every host has a full-duplex port into one
/// non-blocking switch (SimGrid's `<cluster>` without a backbone).
///
/// This is the electrical platform the paper's E-Ring and RD baselines run
/// on: the switch is ideal, so contention happens only at host ports.
#[must_use]
pub fn star_cluster(hosts: usize, capacity_bps: f64, latency_s: f64) -> Network {
    let link = Link {
        capacity_bps,
        latency_s,
    };
    // 2 links per host: uplink 2i, downlink 2i+1.
    let links = vec![link; 2 * hosts];
    Network::from_parts(hosts, links, Router::Star)
}

/// A bidirectional ring of point-to-point links.
#[must_use]
pub fn ring(hosts: usize, capacity_bps: f64, latency_s: f64) -> Network {
    let link = Link {
        capacity_bps,
        latency_s,
    };
    // Clockwise links 0..n, counter-clockwise n..2n.
    let links = vec![link; 2 * hosts];
    Network::from_parts(hosts, links, Router::Ring)
}

/// A full mesh: a dedicated directed link for every ordered host pair.
/// Useful as an idealized (contention-free) electrical reference.
#[must_use]
pub fn full_mesh(hosts: usize, capacity_bps: f64, latency_s: f64) -> Network {
    let link = Link {
        capacity_bps,
        latency_s,
    };
    let links = vec![link; hosts * hosts];
    Network::from_parts(hosts, links, Router::FullMesh)
}

/// A two-level fat tree (edge + spine) with static ECMP.
///
/// `edges * hosts_per_edge` hosts; each edge switch connects to every spine.
/// Edge-to-spine links get `spine_factor` times the host-link capacity so
/// oversubscription can be modelled (1.0 = non-oversubscribed per spine
/// link; total uplink capacity is `spines * spine_factor` host links).
#[must_use]
pub fn fat_tree_two_level(
    edges: usize,
    hosts_per_edge: usize,
    spines: usize,
    capacity_bps: f64,
    latency_s: f64,
) -> Network {
    fat_tree_two_level_oversub(edges, hosts_per_edge, spines, capacity_bps, latency_s, 1.0)
}

/// [`fat_tree_two_level`] with an explicit spine-link capacity factor.
#[must_use]
pub fn fat_tree_two_level_oversub(
    edges: usize,
    hosts_per_edge: usize,
    spines: usize,
    capacity_bps: f64,
    latency_s: f64,
    spine_factor: f64,
) -> Network {
    let hosts = edges * hosts_per_edge;
    let host_link = Link {
        capacity_bps,
        latency_s,
    };
    let spine_link = Link {
        capacity_bps: capacity_bps * spine_factor,
        latency_s,
    };
    let mut links = vec![host_link; 2 * hosts];
    links.extend(std::iter::repeat_n(spine_link, 2 * edges * spines));
    Network::from_parts(
        hosts,
        links,
        Router::FatTree {
            edges,
            hosts_per_edge,
            spines,
        },
    )
}

/// A 2-D torus (`rows * cols` hosts) with dimension-order routing —
/// the classic HPC interconnect shape, for topology-sensitivity studies.
#[must_use]
pub fn torus_2d(rows: usize, cols: usize, capacity_bps: f64, latency_s: f64) -> Network {
    let link = Link {
        capacity_bps,
        latency_s,
    };
    let hosts = rows * cols;
    // Four directed links per host: east, west, south, north.
    let links = vec![link; 4 * hosts];
    Network::from_parts(hosts, links, Router::Torus2D { rows, cols })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_link_count() {
        let net = star_cluster(16, 1e9, 1e-6);
        assert_eq!(net.links().len(), 32);
        assert_eq!(net.hosts(), 16);
    }

    #[test]
    fn ring_link_count() {
        let net = ring(10, 1e9, 1e-6);
        assert_eq!(net.links().len(), 20);
    }

    #[test]
    fn mesh_link_count() {
        let net = full_mesh(6, 1e9, 1e-6);
        assert_eq!(net.links().len(), 36);
    }

    #[test]
    fn torus_routes_are_dimension_ordered_and_minimal() {
        let net = torus_2d(4, 5, 1e9, 1e-6);
        assert_eq!(net.hosts(), 20);
        assert_eq!(net.links().len(), 80);
        for src in 0..20usize {
            for dst in 0..20usize {
                if src == dst {
                    continue;
                }
                let hops = net.route(src, dst).unwrap().len();
                let (r0, c0) = (src / 5, src % 5);
                let (r1, c1) = (dst / 5, dst % 5);
                let dx = {
                    let d = (c1 + 5 - c0) % 5;
                    d.min(5 - d)
                };
                let dy = {
                    let d = (r1 + 4 - r0) % 4;
                    d.min(4 - d)
                };
                assert_eq!(hops, dx + dy, "src={src} dst={dst}");
            }
        }
    }

    #[test]
    fn torus_neighbor_exchange_is_contention_free() {
        use crate::flow::FlowSpec;
        use crate::sim::run_flows;
        let net = torus_2d(4, 4, 1e9, 0.0);
        // Every host sends east: all flows use distinct east links.
        let flows: Vec<FlowSpec> = (0..16)
            .map(|h| {
                let (r, c) = (h / 4, h % 4);
                FlowSpec::new(h, r * 4 + (c + 1) % 4, 1_000_000)
            })
            .collect();
        let report = run_flows(&net, &flows).unwrap();
        assert!((report.makespan_s - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn fat_tree_counts_and_capacity() {
        let net = fat_tree_two_level_oversub(4, 8, 2, 1e9, 1e-6, 2.0);
        assert_eq!(net.hosts(), 32);
        // 2*32 host links + 2*4*2 spine links.
        assert_eq!(net.links().len(), 64 + 16);
        assert_eq!(net.links()[64].capacity_bps, 2e9);
        assert_eq!(net.links()[0].capacity_bps, 1e9);
    }
}
