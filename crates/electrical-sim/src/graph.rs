//! Network graphs: directed capacitated links plus static routing.

use crate::error::{NetError, Result};
use serde::{Deserialize, Serialize};

/// Identifier of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// A directed link with a capacity and a latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Capacity in bytes per second.
    pub capacity_bps: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
}

/// Static routing scheme — one variant per supported topology family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Router {
    /// Hosts hang off one non-blocking switch. Host `i` owns uplink `2i`
    /// and downlink `2i+1`.
    Star,
    /// Bidirectional ring. Clockwise link `i` (`i -> i+1 mod n`) has id `i`;
    /// counter-clockwise link `i` (`i+1 -> i`) has id `n + i`.
    Ring,
    /// Direct link between every ordered pair; link `src -> dst` has id
    /// `src * n + dst`.
    FullMesh,
    /// Two-level fat tree: `edges` edge switches each serving
    /// `hosts_per_edge` hosts, all connected to `spines` spine switches.
    FatTree {
        /// Number of edge switches.
        edges: usize,
        /// Hosts below each edge switch.
        hosts_per_edge: usize,
        /// Number of spine switches.
        spines: usize,
    },
    /// 2-D torus with dimension-order (X then Y) routing. Host
    /// `r * cols + c` sits at row `r`, column `c`. Each host owns four
    /// directed links: east `4h`, west `4h+1`, south `4h+2`, north `4h+3`.
    Torus2D {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
}

/// A host network: links plus a routing scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    hosts: usize,
    links: Vec<Link>,
    router: Router,
}

impl Network {
    /// Assemble a network from parts (used by the [`crate::topology`]
    /// builders; prefer those).
    #[must_use]
    pub fn from_parts(hosts: usize, links: Vec<Link>, router: Router) -> Self {
        Self {
            hosts,
            links,
            router,
        }
    }

    /// Number of hosts.
    #[must_use]
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// All links.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link lookup.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Validate a host index.
    pub fn check_host(&self, host: usize) -> Result<()> {
        if host < self.hosts {
            Ok(())
        } else {
            Err(NetError::HostOutOfRange {
                host,
                hosts: self.hosts,
            })
        }
    }

    /// Route a flow, returning the directed links it crosses in order.
    pub fn route(&self, src: usize, dst: usize) -> Result<Vec<LinkId>> {
        self.check_host(src)?;
        self.check_host(dst)?;
        if src == dst {
            return Err(NetError::SelfFlow(src));
        }
        let n = self.hosts;
        Ok(match &self.router {
            Router::Star => vec![LinkId(2 * src), LinkId(2 * dst + 1)],
            Router::Ring => {
                let cw = (dst + n - src) % n;
                let ccw = n - cw;
                if cw <= ccw {
                    (0..cw).map(|k| LinkId((src + k) % n)).collect()
                } else {
                    (0..ccw)
                        .map(|k| LinkId(n + (src + n - 1 - k) % n))
                        .collect()
                }
            }
            Router::FullMesh => vec![LinkId(src * n + dst)],
            Router::FatTree {
                edges,
                hosts_per_edge,
                spines,
            } => {
                let (e_src, e_dst) = (src / hosts_per_edge, dst / hosts_per_edge);
                debug_assert!(e_src < *edges && e_dst < *edges);
                // Link layout: for each host h: up 2h, down 2h+1 (2n total);
                // then for each (edge e, spine s): up 2n + 2(e*spines+s),
                // down 2n + 2(e*spines+s) + 1.
                let host_up = |h: usize| LinkId(2 * h);
                let host_down = |h: usize| LinkId(2 * h + 1);
                let edge_up = |e: usize, s: usize| LinkId(2 * n + 2 * (e * spines + s));
                let edge_down = |e: usize, s: usize| LinkId(2 * n + 2 * (e * spines + s) + 1);
                if e_src == e_dst {
                    vec![host_up(src), host_down(dst)]
                } else {
                    let s = (src + dst) % spines; // static ECMP hash
                    vec![
                        host_up(src),
                        edge_up(e_src, s),
                        edge_down(e_dst, s),
                        host_down(dst),
                    ]
                }
            }
            Router::Torus2D { rows, cols } => {
                let (rows, cols) = (*rows, *cols);
                let east = |h: usize| LinkId(4 * h);
                let west = |h: usize| LinkId(4 * h + 1);
                let south = |h: usize| LinkId(4 * h + 2);
                let north = |h: usize| LinkId(4 * h + 3);
                let mut route = Vec::new();
                let (mut r, mut c) = (src / cols, src % cols);
                let (tr, tc) = (dst / cols, dst % cols);
                // X dimension first, along the shorter wrap direction.
                let right = (tc + cols - c) % cols;
                let left = cols - right;
                while c != tc {
                    let h = r * cols + c;
                    if right <= left {
                        route.push(east(h));
                        c = (c + 1) % cols;
                    } else {
                        route.push(west(h));
                        c = (c + cols - 1) % cols;
                    }
                }
                // Then Y.
                let down = (tr + rows - r) % rows;
                let up = rows - down;
                while r != tr {
                    let h = r * cols + c;
                    if down <= up {
                        route.push(south(h));
                        r = (r + 1) % rows;
                    } else {
                        route.push(north(h));
                        r = (r + rows - 1) % rows;
                    }
                }
                route
            }
        })
    }

    /// Sum of one-way latencies along the route of a flow.
    pub fn route_latency(&self, src: usize, dst: usize) -> Result<f64> {
        Ok(self
            .route(src, dst)?
            .iter()
            .map(|&l| self.link(l).latency_s)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{fat_tree_two_level, full_mesh, ring, star_cluster};

    #[test]
    fn star_routes_cross_the_switch() {
        let net = star_cluster(4, 1e9, 1e-6);
        assert_eq!(net.route(0, 3).unwrap(), vec![LinkId(0), LinkId(7)]);
        assert_eq!(net.route(3, 0).unwrap(), vec![LinkId(6), LinkId(1)]);
        assert!((net.route_latency(0, 3).unwrap() - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn ring_routes_take_the_short_arc() {
        let net = ring(8, 1e9, 1e-6);
        // 0 -> 2 clockwise: links 0, 1.
        assert_eq!(net.route(0, 2).unwrap(), vec![LinkId(0), LinkId(1)]);
        // 0 -> 7 counter-clockwise: ccw link from 0 to 7 is id 8 + 7.
        assert_eq!(net.route(0, 7).unwrap(), vec![LinkId(8 + 7)]);
        // 1 -> 7: ccw two hops: (1->0) id 8+0, (0->7) id 8+7.
        assert_eq!(net.route(1, 7).unwrap(), vec![LinkId(8), LinkId(8 + 7)]);
    }

    #[test]
    fn mesh_routes_are_single_hop() {
        let net = full_mesh(5, 1e9, 1e-6);
        assert_eq!(net.route(2, 4).unwrap(), vec![LinkId(2 * 5 + 4)]);
    }

    #[test]
    fn fat_tree_routes() {
        let net = fat_tree_two_level(2, 4, 2, 1e9, 1e-6);
        assert_eq!(net.hosts(), 8);
        // Same edge: two links.
        assert_eq!(net.route(0, 1).unwrap().len(), 2);
        // Cross edge: four links.
        assert_eq!(net.route(0, 5).unwrap().len(), 4);
    }

    #[test]
    fn route_validation() {
        let net = star_cluster(4, 1e9, 1e-6);
        assert!(matches!(
            net.route(0, 9),
            Err(NetError::HostOutOfRange { .. })
        ));
        assert!(matches!(net.route(2, 2), Err(NetError::SelfFlow(2))));
    }

    #[test]
    fn ring_route_lengths_are_minimal() {
        let net = ring(9, 1e9, 0.0);
        for a in 0..9usize {
            for b in 0..9usize {
                if a == b {
                    continue;
                }
                let hops = net.route(a, b).unwrap().len();
                let cw = (b + 9 - a) % 9;
                assert_eq!(hops, cw.min(9 - cw));
            }
        }
    }
}
