//! The streaming fluid engine.
//!
//! [`FluidEngine`] is the single execution engine behind every dependency-
//! aware electrical run: the closed-set entry point
//! ([`crate::sim::run_engine`], reached through [`crate::runner::run_dag`]
//! and friends) injects the whole flow list at time zero and pumps the
//! engine to idle, while open-loop cluster services
//! [`FluidEngine::inject`] each arriving job's flows into the *running*
//! engine. The incremental per-component max-min re-solve, the lazy
//! `remaining` bookkeeping and the one-completion-event-per-component
//! discipline are shared, so a stream whose arrivals are all known up
//! front is bit-exact with the closed path.
//!
//! # Determinism across injection times
//!
//! Flow indices are assigned sequentially at injection and never reused,
//! so injecting jobs in arrival order reproduces exactly the indices a
//! closed composition would assign — and every index-ordered scan
//! (promotion, job rate attribution, completion-by-candidate) visits flows
//! in the same order with the same floating-point state. Event *sequence*
//! order within a batch can differ between the two drivers, but batches
//! are processed as sets: liveness is an `|=` accumulation and completions
//! are found by candidate bits in index order, not in pop order.
//!
//! Bookkeeping is `O(total flows injected)` in memory (per-flow scalars are
//! kept; routes, dependency and dependent lists are dropped when a flow
//! completes), and an event costs work proportional to the *unsettled* and
//! *active* flow sets plus the affected contention component — not to the
//! number of flows ever injected.
//!
//! The engine supports [`FluidEngine::snapshot`] /
//! [`FluidEngine::restore`]: a versioned, serializable image of the flow
//! table, pending kernel events and clock. Per-flow times are stored as
//! IEEE-754 bit patterns so `INFINITY` sentinels and exact candidates
//! survive JSON round-trips byte-identically.

use crate::error::{NetError, Result};
use crate::graph::{LinkId, Network};
use crate::maxmin::progressive_fill;
use crate::sim::{EngineFlow, EngineOutcome, EngineReport, Phase, EPS};
use serde::{Deserialize, Serialize};
use wrht_kernel::EventKernel;

/// Version tag of [`FluidEngineSnapshot`]; bump on any layout change.
pub const SNAPSHOT_VERSION: u32 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Ev {
    Release(usize),
    Timer(usize),
    Complete(usize),
}

/// Versioned, serializable image of a [`FluidEngine`] mid-run.
///
/// Per-flow `f64` arrays are stored as raw bit patterns (`u64`): candidate
/// times legitimately hold `INFINITY`, which JSON cannot represent, and the
/// resumed run must match an uninterrupted one bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluidEngineSnapshot {
    /// Snapshot layout version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    now: u64,
    events: u64,
    flows: Vec<EngineFlow>,
    routes: Vec<Vec<LinkId>>,
    latencies: Vec<u64>,
    dependents: Vec<Vec<usize>>,
    missing: Vec<usize>,
    phase: Vec<Phase>,
    remaining: Vec<u64>,
    start: Vec<u64>,
    finish: Vec<u64>,
    rate: Vec<u64>,
    release_scheduled: Vec<bool>,
    last_update: Vec<u64>,
    cand: Vec<u64>,
    sched_cand: Vec<u64>,
    flows_on_link: Vec<Vec<usize>>,
    dirty: Vec<usize>,
    unsettled: Vec<usize>,
    active: Vec<usize>,
    n_done: usize,
    completed: Vec<usize>,
    recomputations: usize,
    solver_work: usize,
    job_active_s: Vec<u64>,
    job_service_bytes: Vec<u64>,
    job_peak_rate: Vec<u64>,
    pending: Vec<(u64, Ev)>,
}

fn to_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn from_bits(v: &[u64]) -> Vec<f64> {
    v.iter().map(|&x| f64::from_bits(x)).collect()
}

/// The dependency-aware streaming fluid engine (see module docs).
#[derive(Debug)]
pub struct FluidEngine<'a> {
    net: &'a Network,
    flows: Vec<EngineFlow>,
    routes: Vec<Vec<LinkId>>,
    latencies: Vec<f64>,
    dependents: Vec<Vec<usize>>,
    missing: Vec<usize>,
    phase: Vec<Phase>,
    remaining: Vec<f64>,
    start: Vec<f64>,
    finish: Vec<f64>,
    rate: Vec<f64>,
    kernel: EventKernel<Ev>,
    release_scheduled: Vec<bool>,
    last_update: Vec<f64>,
    cand: Vec<f64>,
    sched_cand: Vec<f64>,
    // Index lists bounding per-event work: flows not yet transmitting
    // (Blocked/Pending/Latency) and flows currently transmitting, both
    // sorted ascending so scans visit flows in closed-path index order.
    unsettled: Vec<usize>,
    active: Vec<usize>,
    n_done: usize,
    completed: Vec<usize>,
    flows_on_link: Vec<Vec<usize>>,
    dirty: Vec<usize>,
    recomputations: usize,
    solver_work: usize,
    events_base: u64,
    job_active_s: Vec<f64>,
    job_service_bytes: Vec<f64>,
    job_peak_rate: Vec<f64>,
    // Scratch, allocated once (not part of snapshots).
    link_seen: Vec<bool>,
    flow_seen: Vec<bool>,
    flow_comp: Vec<u32>,
    comp_min: Vec<(f64, usize)>,
    cap_scratch: Vec<f64>,
    count_scratch: Vec<usize>,
    old_rate_scratch: Vec<f64>,
    batch: Vec<Ev>,
    comp_links: Vec<usize>,
    comp_flows: Vec<usize>,
    comp_stack: Vec<usize>,
    job_agg_rate: Vec<f64>,
    job_busy: Vec<bool>,
    busy_jobs: Vec<usize>,
    newly_active: Vec<usize>,
}

impl<'a> FluidEngine<'a> {
    /// Fresh engine over the given network.
    #[must_use]
    pub fn new(net: &'a Network) -> Self {
        let n_links = net.links().len();
        Self {
            net,
            flows: Vec::new(),
            routes: Vec::new(),
            latencies: Vec::new(),
            dependents: Vec::new(),
            missing: Vec::new(),
            phase: Vec::new(),
            remaining: Vec::new(),
            start: Vec::new(),
            finish: Vec::new(),
            rate: Vec::new(),
            kernel: EventKernel::new(),
            release_scheduled: Vec::new(),
            last_update: Vec::new(),
            cand: Vec::new(),
            sched_cand: Vec::new(),
            unsettled: Vec::new(),
            active: Vec::new(),
            n_done: 0,
            completed: Vec::new(),
            flows_on_link: vec![Vec::new(); n_links],
            dirty: Vec::new(),
            recomputations: 0,
            solver_work: 0,
            events_base: 0,
            job_active_s: Vec::new(),
            job_service_bytes: Vec::new(),
            job_peak_rate: Vec::new(),
            link_seen: vec![false; n_links],
            flow_seen: Vec::new(),
            flow_comp: Vec::new(),
            comp_min: Vec::new(),
            cap_scratch: vec![0.0; n_links],
            count_scratch: vec![0; n_links],
            old_rate_scratch: Vec::new(),
            batch: Vec::new(),
            comp_links: Vec::new(),
            comp_flows: Vec::new(),
            comp_stack: Vec::new(),
            job_agg_rate: Vec::new(),
            job_busy: Vec::new(),
            busy_jobs: Vec::new(),
            newly_active: Vec::new(),
        }
    }

    /// Inject a flow batch (one job's DAG) into the running engine.
    /// Dependency indices are **batch-local** (each `<` own position within
    /// the batch); a job's DAG is injected atomically. Returns the engine
    /// index of the batch's first flow — batch flows get sequential indices
    /// from there, and those indices identify completions.
    ///
    /// # Errors
    /// Same validation (and error values) as the closed path: forward deps,
    /// non-finite/negative releases and unroutable flows are rejected
    /// before any state changes.
    pub fn inject(&mut self, batch: &[EngineFlow]) -> Result<usize> {
        let base = self.flows.len();
        let mut routes: Vec<Vec<LinkId>> = Vec::with_capacity(batch.len());
        let mut latencies: Vec<f64> = Vec::with_capacity(batch.len());
        for (i, f) in batch.iter().enumerate() {
            if f.deps.iter().any(|&d| d >= i) {
                return Err(NetError::BadConfig("dependency must precede its flow"));
            }
            if !f.release_s.is_finite() || f.release_s < 0.0 {
                return Err(NetError::BadConfig("release time must be finite and >= 0"));
            }
            routes.push(self.net.route(f.src, f.dst)?);
            latencies.push(self.net.route_latency(f.src, f.dst)?);
        }
        for (bi, f) in batch.iter().enumerate() {
            let i = base + bi;
            self.missing.push(f.deps.len());
            self.dependents.push(Vec::new());
            for &d in &f.deps {
                self.dependents[base + d].push(i);
            }
            self.phase.push(if f.deps.is_empty() {
                Phase::Pending
            } else {
                Phase::Blocked
            });
            self.remaining.push(f.bytes as f64);
            self.start.push(0.0);
            self.finish.push(0.0);
            self.rate.push(0.0);
            self.release_scheduled.push(false);
            self.last_update.push(0.0);
            self.cand.push(f64::INFINITY);
            self.sched_cand.push(f64::INFINITY);
            self.flow_seen.push(false);
            self.flow_comp.push(0);
            // New indices are the largest yet, so pushing keeps the
            // unsettled list sorted.
            self.unsettled.push(i);
            if f.job >= self.job_active_s.len() {
                let jobs = f.job + 1;
                self.job_active_s.resize(jobs, 0.0);
                self.job_service_bytes.resize(jobs, 0.0);
                self.job_peak_rate.resize(jobs, 0.0);
                self.job_agg_rate.resize(jobs, 0.0);
                self.job_busy.resize(jobs, false);
            }
            // Store deps rebased to engine indices so dependency edges stay
            // meaningful when later batches are appended.
            let mut flow = f.clone();
            for d in &mut flow.deps {
                *d += base;
            }
            self.flows.push(flow);
        }
        self.routes.append(&mut routes);
        self.latencies.append(&mut latencies);
        Ok(base)
    }

    /// Timestamp of the next pending event, if any. Events for freshly
    /// injected flows are only scheduled inside [`FluidEngine::step`]'s
    /// promotion scan, so this can overestimate right after an injection —
    /// callers injecting arrivals in time order are unaffected (a too-late
    /// peek only admits *extra* arrivals early, which is harmless: a
    /// pending flow behaves identically however early it is injected).
    pub fn peek_time(&mut self) -> Option<f64> {
        self.kernel.peek_time()
    }

    /// Process the next event instant: promote newly eligible flows,
    /// re-solve the dirty contention component, pop the next live batch and
    /// apply its completions. Returns the batch instant, or `None` when the
    /// engine is idle (every injected flow done).
    ///
    /// # Errors
    /// [`NetError::StalledFlow`] when a flow is frozen at rate zero, and
    /// the closed path's "unreachable flows" error when the queue drains
    /// with unfinished flows.
    pub fn step(&mut self) -> Result<Option<f64>> {
        let now = self.kernel.now();

        // Promote flows whose gates opened or timers expired. Completions
        // of zero-byte flows can unblock dependents at the same instant,
        // so iterate to a fixpoint (deps point backwards, so this
        // terminates). Scanning the sorted unsettled list is equivalent to
        // the closed path's full index scan: settled flows are no-ops there.
        loop {
            let mut unblocked = false;
            let mut settled = false;
            for k in 0..self.unsettled.len() {
                let i = self.unsettled[k];
                match self.phase[i] {
                    Phase::Pending if self.flows[i].release_s <= now + EPS => {
                        self.start[i] = now;
                        // Zero-byte control gates skip the latency pipe.
                        let pipe = if self.remaining[i] <= EPS {
                            self.flows[i].delay_s
                        } else {
                            self.flows[i].delay_s + self.latencies[i]
                        };
                        if pipe > 0.0 {
                            self.phase[i] = Phase::Latency(now + pipe);
                            self.kernel
                                .schedule_at(now + pipe, Ev::Timer(i))
                                .expect("latency expiry is ahead of the clock");
                        } else if self.remaining[i] <= EPS {
                            settled = true;
                            unblocked |= self.settle_zero_byte(i, now);
                        } else {
                            settled = true;
                            self.activate(i);
                        }
                    }
                    Phase::Latency(t) if t <= now + EPS => {
                        if self.remaining[i] <= EPS {
                            settled = true;
                            unblocked |= self.settle_zero_byte(i, now.max(t));
                        } else {
                            settled = true;
                            self.activate(i);
                        }
                    }
                    // Release still in the future: schedule its wake-up
                    // once (see the closed path for the stale-event
                    // tolerance).
                    Phase::Pending if !self.release_scheduled[i] => {
                        self.release_scheduled[i] = true;
                        self.kernel
                            .schedule_at(self.flows[i].release_s, Ev::Release(i))
                            .expect("pending release is ahead of the clock");
                    }
                    Phase::Blocked if self.missing[i] == 0 => {
                        self.phase[i] = Phase::Pending;
                        unblocked = true;
                    }
                    _ => {}
                }
            }
            if settled {
                let phase = &self.phase;
                self.unsettled.retain(|&i| {
                    matches!(
                        phase[i],
                        Phase::Blocked | Phase::Pending | Phase::Latency(_)
                    )
                });
            }
            if !unblocked {
                break;
            }
        }
        // Merge flows activated above into the sorted active list.
        for k in 0..self.newly_active.len() {
            let i = self.newly_active[k];
            let pos = self.active.partition_point(|&a| a < i);
            self.active.insert(pos, i);
        }
        self.newly_active.clear();

        // Re-solve rates, but only over the contention component whose
        // active-flow set changed (identical to the closed path).
        self.resolve_dirty()?;

        // Pop the next batch of same-instant events; purely stale batches
        // advance only the kernel clock.
        let batch_time = loop {
            self.batch.clear();
            match self.kernel.pop_batch(&mut self.batch) {
                None => break None,
                Some(t) => {
                    let mut live = false;
                    for ev in &self.batch {
                        match *ev {
                            Ev::Release(i) => live |= self.phase[i] == Phase::Pending,
                            Ev::Timer(i) => live |= matches!(self.phase[i], Phase::Latency(_)),
                            Ev::Complete(i) => {
                                if self.sched_cand[i].to_bits() == t.to_bits() {
                                    self.sched_cand[i] = f64::INFINITY;
                                }
                                live |= self.phase[i] == Phase::Active
                                    && self.cand[i].to_bits() == t.to_bits();
                            }
                        }
                    }
                    if live {
                        break Some(t);
                    }
                }
            }
        };
        let Some(next) = batch_time else {
            if self.n_done == self.flows.len() {
                return Ok(None);
            }
            return Err(NetError::BadConfig("unreachable flows in dependency DAG"));
        };
        let dt = (next - now).max(0.0);

        // Attribute the current rate allocation to jobs over [now, next]:
        // each transmitting flow's max-min rate is constant on the
        // interval. The active list is ascending, so the per-job float
        // sums accumulate in closed-path index order.
        self.busy_jobs.clear();
        for &i in &self.active {
            if self.rate[i].is_finite() {
                let j = self.flows[i].job;
                if !self.job_busy[j] {
                    self.job_busy[j] = true;
                    self.busy_jobs.push(j);
                }
                self.job_agg_rate[j] += self.rate[i];
            }
        }
        for &j in &self.busy_jobs {
            self.job_peak_rate[j] = self.job_peak_rate[j].max(self.job_agg_rate[j]);
            if dt > 0.0 {
                self.job_active_s[j] += dt;
                self.job_service_bytes[j] += self.job_agg_rate[j] * dt;
            }
            self.job_busy[j] = false;
            self.job_agg_rate[j] = 0.0;
        }

        // Apply the instant: completions are found by candidate bits in
        // index order, not by event carrier (see the closed path).
        let nb = next.to_bits();
        let mut completed_any = false;
        for k in 0..self.active.len() {
            let i = self.active[k];
            if self.cand[i].to_bits() == nb {
                completed_any = true;
                self.remaining[i] = 0.0;
                self.phase[i] = Phase::Done;
                self.finish[i] = next;
                self.n_done += 1;
                for &l in &self.routes[i] {
                    self.flows_on_link[l.0].retain(|&f| f != i);
                    self.dirty.push(l.0);
                }
                for d in 0..self.dependents[i].len() {
                    let dep = self.dependents[i][d];
                    self.missing[dep] -= 1;
                }
                // Done flows keep their scalars (outcomes, rates) but drop
                // their route and edge lists — the O(total flows) residue
                // of a long stream is a handful of scalars per flow.
                self.routes[i] = Vec::new();
                self.dependents[i] = Vec::new();
                self.flows[i].deps = Vec::new();
                self.completed.push(i);
            }
        }
        if completed_any {
            let phase = &self.phase;
            self.active.retain(|&i| phase[i] == Phase::Active);
        }
        Ok(Some(next))
    }

    fn activate(&mut self, i: usize) {
        self.phase[i] = Phase::Active;
        for &l in &self.routes[i] {
            self.flows_on_link[l.0].push(i);
            self.dirty.push(l.0);
        }
        self.newly_active.push(i);
    }

    /// Complete a zero-byte control gate at `finish`; returns whether any
    /// dependent lost its last missing edge.
    fn settle_zero_byte(&mut self, i: usize, finish: f64) -> bool {
        self.phase[i] = Phase::Done;
        self.finish[i] = finish;
        self.n_done += 1;
        let mut unblocked = false;
        for d in 0..self.dependents[i].len() {
            let dep = self.dependents[i][d];
            self.missing[dep] -= 1;
            unblocked = true;
        }
        self.routes[i] = Vec::new();
        self.dependents[i] = Vec::new();
        self.flows[i].deps = Vec::new();
        self.completed.push(i);
        unblocked
    }

    /// Incremental per-component max-min re-solve (bit-identical to the
    /// closed path's).
    fn resolve_dirty(&mut self) -> Result<()> {
        if self.dirty.is_empty() {
            return Ok(());
        }
        let now = self.kernel.now();
        self.comp_links.clear();
        self.comp_flows.clear();
        let mut n_comps = 0usize;
        for s in 0..self.dirty.len() {
            let seed = self.dirty[s];
            if self.link_seen[seed] {
                continue;
            }
            self.link_seen[seed] = true;
            self.comp_links.push(seed);
            self.comp_stack.push(seed);
            let mut found_flow = false;
            while let Some(l) = self.comp_stack.pop() {
                for f_idx in 0..self.flows_on_link[l].len() {
                    let f = self.flows_on_link[l][f_idx];
                    if !self.flow_seen[f] {
                        self.flow_seen[f] = true;
                        self.flow_comp[f] = u32::try_from(n_comps).expect("component count");
                        self.comp_flows.push(f);
                        found_flow = true;
                        for l2_idx in 0..self.routes[f].len() {
                            let l2 = self.routes[f][l2_idx];
                            if !self.link_seen[l2.0] {
                                self.link_seen[l2.0] = true;
                                self.comp_links.push(l2.0);
                                self.comp_stack.push(l2.0);
                            }
                        }
                    }
                }
            }
            if found_flow {
                n_comps += 1;
            }
        }
        self.comp_links.sort_unstable();
        self.comp_flows.sort_unstable();
        if !self.comp_flows.is_empty() {
            self.recomputations += 1;
            for &l in &self.comp_links {
                self.cap_scratch[l] = self.net.links()[l].capacity_bps;
                self.count_scratch[l] = self.flows_on_link[l].len();
            }
            self.old_rate_scratch.clear();
            self.old_rate_scratch
                .extend(self.comp_flows.iter().map(|&f| self.rate[f]));
            progressive_fill(
                &self.comp_links,
                &self.comp_flows,
                &self.routes,
                &mut self.cap_scratch,
                &mut self.count_scratch,
                &mut self.rate,
                &mut self.solver_work,
            );
            for (k, &f) in self.comp_flows.iter().enumerate() {
                if self.rate[f].is_nan() || self.rate[f] <= 0.0 {
                    return Err(NetError::StalledFlow {
                        src: self.flows[f].src,
                        dst: self.flows[f].dst,
                    });
                }
                if self.rate[f].to_bits() == self.old_rate_scratch[k].to_bits() {
                    continue;
                }
                self.remaining[f] -= self.old_rate_scratch[k] * (now - self.last_update[f]);
                self.last_update[f] = now;
                self.cand[f] = if self.rate[f].is_finite() {
                    (now + self.remaining[f] / self.rate[f]).max(now)
                } else {
                    now
                };
            }
            self.comp_min.clear();
            self.comp_min.resize(n_comps, (f64::INFINITY, usize::MAX));
            for &f in &self.comp_flows {
                let c = self.flow_comp[f] as usize;
                if self.cand[f] < self.comp_min[c].0 {
                    self.comp_min[c] = (self.cand[f], f);
                }
            }
            for c in 0..self.comp_min.len() {
                let (t, f) = self.comp_min[c];
                if f != usize::MAX && self.sched_cand[f].to_bits() != t.to_bits() {
                    self.sched_cand[f] = t;
                    self.kernel
                        .schedule_at(t, Ev::Complete(f))
                        .expect("completion candidate is ahead of the clock");
                }
            }
        }
        for &l in &self.comp_links {
            self.link_seen[l] = false;
        }
        for &f in &self.comp_flows {
            self.flow_seen[f] = false;
        }
        self.dirty.clear();
        Ok(())
    }

    /// Current engine clock (timestamp of the last processed batch).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.kernel.now()
    }

    /// Events processed so far, including any before a snapshot/restore.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events_base + self.kernel.events_processed()
    }

    /// Total flows ever injected.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Flows not yet done.
    #[must_use]
    pub fn live_flows(&self) -> usize {
        self.flows.len() - self.n_done
    }

    /// `(start, finish)` window of flow `i` (zeros until settled).
    #[must_use]
    pub fn window(&self, i: usize) -> (f64, f64) {
        (self.start[i], self.finish[i])
    }

    /// Rate solver invocations so far.
    #[must_use]
    pub fn rate_recomputations(&self) -> usize {
        self.recomputations
    }

    /// Progressive-filling work units so far.
    #[must_use]
    pub fn solver_work(&self) -> usize {
        self.solver_work
    }

    /// Per-job `(active seconds, service bytes, peak rate)` attribution,
    /// indexed by [`EngineFlow::job`].
    #[must_use]
    pub fn job_totals(&self) -> (&[f64], &[f64], &[f64]) {
        (
            &self.job_active_s,
            &self.job_service_bytes,
            &self.job_peak_rate,
        )
    }

    /// Append and clear the indices of flows completed since the last call.
    pub fn drain_completed(&mut self, out: &mut Vec<usize>) {
        out.append(&mut self.completed);
    }

    /// Build the closed-set report (consumes the engine).
    pub(crate) fn into_report(self) -> EngineReport {
        let makespan = self.finish.iter().copied().fold(0.0f64, f64::max);
        EngineReport {
            makespan_s: makespan,
            outcomes: self
                .start
                .iter()
                .zip(&self.finish)
                .map(|(&start_s, &finish_s)| EngineOutcome { start_s, finish_s })
                .collect(),
            rate_recomputations: self.recomputations,
            solver_work: self.solver_work,
            events: self.events_base + self.kernel.events_processed(),
            job_active_s: self.job_active_s,
            job_service_bytes: self.job_service_bytes,
            job_peak_rate_bps: self.job_peak_rate,
        }
    }

    /// Capture the full mutable state as a versioned snapshot. Completions
    /// not yet drained are included and survive the round-trip.
    #[must_use]
    pub fn snapshot(&self) -> FluidEngineSnapshot {
        FluidEngineSnapshot {
            version: SNAPSHOT_VERSION,
            now: self.kernel.now().to_bits(),
            events: self.events(),
            flows: self.flows.clone(),
            routes: self.routes.clone(),
            latencies: to_bits(&self.latencies),
            dependents: self.dependents.clone(),
            missing: self.missing.clone(),
            phase: self.phase.clone(),
            remaining: to_bits(&self.remaining),
            start: to_bits(&self.start),
            finish: to_bits(&self.finish),
            rate: to_bits(&self.rate),
            release_scheduled: self.release_scheduled.clone(),
            last_update: to_bits(&self.last_update),
            cand: to_bits(&self.cand),
            sched_cand: to_bits(&self.sched_cand),
            flows_on_link: self.flows_on_link.clone(),
            dirty: self.dirty.clone(),
            unsettled: self.unsettled.clone(),
            active: self.active.clone(),
            n_done: self.n_done,
            completed: self.completed.clone(),
            recomputations: self.recomputations,
            solver_work: self.solver_work,
            job_active_s: to_bits(&self.job_active_s),
            job_service_bytes: to_bits(&self.job_service_bytes),
            job_peak_rate: to_bits(&self.job_peak_rate),
            pending: self
                .kernel
                .pending()
                .into_iter()
                .map(|(t, ev)| (t.to_bits(), *ev))
                .collect(),
        }
    }

    /// Rebuild an engine from a snapshot taken over an identical network.
    /// The resumed run is byte-identical to an uninterrupted one.
    ///
    /// # Errors
    /// Rejects unknown snapshot versions and corrupt clocks/events.
    pub fn restore(net: &'a Network, snap: &FluidEngineSnapshot) -> Result<Self> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(NetError::BadConfig(
                "unsupported fluid-engine snapshot version",
            ));
        }
        let mut eng = Self::new(net);
        eng.kernel
            .fast_forward(f64::from_bits(snap.now))
            .map_err(|_| NetError::BadConfig("snapshot clock must be finite and >= 0"))?;
        for &(t, ev) in &snap.pending {
            eng.kernel
                .schedule_at(f64::from_bits(t), ev)
                .map_err(|_| NetError::BadConfig("snapshot event precedes its clock"))?;
        }
        eng.flows = snap.flows.clone();
        eng.routes = snap.routes.clone();
        eng.latencies = from_bits(&snap.latencies);
        eng.dependents = snap.dependents.clone();
        eng.missing = snap.missing.clone();
        eng.phase = snap.phase.clone();
        eng.remaining = from_bits(&snap.remaining);
        eng.start = from_bits(&snap.start);
        eng.finish = from_bits(&snap.finish);
        eng.rate = from_bits(&snap.rate);
        eng.release_scheduled = snap.release_scheduled.clone();
        eng.last_update = from_bits(&snap.last_update);
        eng.cand = from_bits(&snap.cand);
        eng.sched_cand = from_bits(&snap.sched_cand);
        eng.flows_on_link = snap.flows_on_link.clone();
        eng.dirty = snap.dirty.clone();
        eng.unsettled = snap.unsettled.clone();
        eng.active = snap.active.clone();
        eng.n_done = snap.n_done;
        eng.completed = snap.completed.clone();
        eng.recomputations = snap.recomputations;
        eng.solver_work = snap.solver_work;
        eng.events_base = snap.events;
        eng.job_active_s = from_bits(&snap.job_active_s);
        eng.job_service_bytes = from_bits(&snap.job_service_bytes);
        eng.job_peak_rate = from_bits(&snap.job_peak_rate);
        let n = eng.flows.len();
        eng.flow_seen = vec![false; n];
        eng.flow_comp = vec![0; n];
        let jobs = eng.job_active_s.len();
        eng.job_agg_rate = vec![0.0; jobs];
        eng.job_busy = vec![false; jobs];
        Ok(eng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::star_cluster;

    fn flow(src: usize, dst: usize, bytes: u64, release_s: f64, deps: Vec<usize>) -> EngineFlow {
        EngineFlow {
            src,
            dst,
            bytes,
            release_s,
            delay_s: 0.0,
            deps,
            job: 0,
        }
    }

    #[test]
    fn incremental_injection_matches_upfront_injection() {
        let net = star_cluster(8, 1e9, 500e-9);
        let all = vec![
            flow(0, 1, 1_000_000, 0.0, vec![]),
            flow(1, 2, 700_000, 0.0, vec![0]),
            flow(3, 4, 900_000, 5e-4, vec![]),
        ];
        let mut up = FluidEngine::new(&net);
        up.inject(&all).unwrap();
        while up.step().unwrap().is_some() {}

        let mut inc = FluidEngine::new(&net);
        inc.inject(&all[..2]).unwrap();
        let mut injected = false;
        loop {
            if !injected && inc.peek_time().is_none_or(|p| p >= 5e-4) {
                inc.inject(&all[2..]).unwrap();
                injected = true;
            }
            if inc.step().unwrap().is_none() && injected {
                break;
            }
        }
        assert_eq!(up.events(), inc.events());
        for i in 0..all.len() {
            assert_eq!(up.window(i).1.to_bits(), inc.window(i).1.to_bits());
        }
    }

    #[test]
    fn snapshot_restore_resumes_byte_identically() {
        let net = star_cluster(8, 1e9, 500e-9);
        let all = vec![
            flow(0, 1, 1_000_000, 0.0, vec![]),
            flow(0, 2, 700_000, 0.0, vec![]),
            flow(1, 2, 900_000, 0.0, vec![0]),
            flow(5, 6, 400_000, 3e-4, vec![]),
        ];
        let mut full = FluidEngine::new(&net);
        full.inject(&all).unwrap();
        while full.step().unwrap().is_some() {}

        let mut eng = FluidEngine::new(&net);
        eng.inject(&all).unwrap();
        eng.step().unwrap();
        eng.step().unwrap();
        let json = serde_json::to_string(&eng.snapshot()).unwrap();
        let snap: FluidEngineSnapshot = serde_json::from_str(&json).unwrap();
        let mut resumed = FluidEngine::restore(&net, &snap).unwrap();
        while resumed.step().unwrap().is_some() {}

        assert_eq!(full.events(), resumed.events());
        assert_eq!(full.solver_work(), resumed.solver_work());
        for i in 0..all.len() {
            assert_eq!(full.window(i).1.to_bits(), resumed.window(i).1.to_bits());
        }
    }

    #[test]
    fn unknown_snapshot_version_is_rejected() {
        let net = star_cluster(4, 1e9, 0.0);
        let eng = FluidEngine::new(&net);
        let mut snap = eng.snapshot();
        snap.version = SNAPSHOT_VERSION + 1;
        assert!(matches!(
            FluidEngine::restore(&net, &snap),
            Err(NetError::BadConfig(_))
        ));
    }

    #[test]
    fn completed_flows_drop_their_edge_lists() {
        let net = star_cluster(4, 1e9, 0.0);
        let mut eng = FluidEngine::new(&net);
        eng.inject(&[
            flow(0, 1, 1_000_000, 0.0, vec![]),
            flow(1, 2, 1_000_000, 0.0, vec![0]),
        ])
        .unwrap();
        while eng.step().unwrap().is_some() {}
        assert_eq!(eng.live_flows(), 0);
        assert!(eng.routes.iter().all(Vec::is_empty));
        assert!(eng.dependents.iter().all(Vec::is_empty));
        let mut done = Vec::new();
        eng.drain_completed(&mut done);
        assert_eq!(done.len(), 2);
    }
}
