//! Progressive-filling max-min fair bandwidth allocation.
//!
//! This is the heart of SimGrid's fluid network model: every active flow
//! gets the largest rate such that no link is oversubscribed and no flow can
//! be raised without lowering a flow of equal or smaller rate. The classic
//! algorithm saturates the most-contended link, freezes the flows crossing
//! it, subtracts their bandwidth and repeats.
//!
//! ```
//! use electrical_sim::maxmin::maxmin_rates;
//! use electrical_sim::topology::star_cluster;
//!
//! let net = star_cluster(4, 1e9, 0.0);
//! // Two flows into host 0 share its 1 GB/s downlink fairly.
//! let routes = vec![net.route(1, 0).unwrap(), net.route(2, 0).unwrap()];
//! let rates = maxmin_rates(&net, &routes);
//! assert!((rates[0] - 0.5e9).abs() < 1.0 && (rates[1] - 0.5e9).abs() < 1.0);
//! ```

use crate::graph::{LinkId, Network};

/// Compute max-min fair rates (bytes/s) for `routes`, one route per flow.
///
/// Flows with empty routes are given an infinite rate (they complete in
/// latency only); callers prevent this case for real networks.
#[must_use]
pub fn maxmin_rates(net: &Network, routes: &[Vec<LinkId>]) -> Vec<f64> {
    let n_flows = routes.len();
    let n_links = net.links().len();
    let mut remaining: Vec<f64> = net.links().iter().map(|l| l.capacity_bps).collect();
    let mut active_on_link: Vec<usize> = vec![0; n_links];
    // Which links each flow still counts on (all of them until frozen).
    for route in routes {
        for &l in route {
            active_on_link[l.0] += 1;
        }
    }

    let mut rate = vec![f64::INFINITY; n_flows];
    let mut frozen = vec![false; n_flows];
    let mut unfrozen = n_flows;

    while unfrozen > 0 {
        // Bottleneck share: smallest fair share among links with active
        // flows. All links at that share saturate simultaneously, so every
        // flow crossing any of them freezes this round — this keeps
        // symmetric workloads (e.g. ring steps) at one round total.
        let mut best_share = f64::INFINITY;
        for l in 0..n_links {
            if active_on_link[l] > 0 {
                let share = remaining[l] / active_on_link[l] as f64;
                if share < best_share {
                    best_share = share;
                }
            }
        }
        if best_share == f64::INFINITY {
            // Remaining flows cross no active link (empty routes): done.
            break;
        }
        let threshold = best_share * (1.0 + 1e-12);
        let mut progressed = false;
        for (f, route) in routes.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            let bottlenecked = route.iter().any(|&l| {
                active_on_link[l.0] > 0 && remaining[l.0] / active_on_link[l.0] as f64 <= threshold
            });
            if !bottlenecked {
                continue;
            }
            frozen[f] = true;
            progressed = true;
            unfrozen -= 1;
            rate[f] = best_share;
            for &l in route {
                remaining[l.0] = (remaining[l.0] - best_share).max(0.0);
                active_on_link[l.0] -= 1;
            }
        }
        if !progressed {
            break; // Defensive: numerical corner, avoid spinning.
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ring, star_cluster};

    fn routes(net: &Network, pairs: &[(usize, usize)]) -> Vec<Vec<LinkId>> {
        pairs
            .iter()
            .map(|&(s, d)| net.route(s, d).unwrap())
            .collect()
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let net = star_cluster(4, 1e9, 0.0);
        let r = maxmin_rates(&net, &routes(&net, &[(0, 1)]));
        assert!((r[0] - 1e9).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_a_common_uplink() {
        let net = star_cluster(4, 1e9, 0.0);
        // Both flows leave host 0: share its uplink.
        let r = maxmin_rates(&net, &routes(&net, &[(0, 1), (0, 2)]));
        assert!((r[0] - 5e8).abs() < 1.0);
        assert!((r[1] - 5e8).abs() < 1.0);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let net = star_cluster(4, 1e9, 0.0);
        let r = maxmin_rates(&net, &routes(&net, &[(0, 1), (2, 3)]));
        assert!(r.iter().all(|&x| (x - 1e9).abs() < 1.0));
    }

    #[test]
    fn incast_shares_the_downlink() {
        let net = star_cluster(8, 1e9, 0.0);
        let pairs: Vec<_> = (1..5).map(|s| (s, 0usize)).collect();
        let r = maxmin_rates(&net, &routes(&net, &pairs));
        for &x in &r {
            assert!((x - 2.5e8).abs() < 1.0);
        }
    }

    #[test]
    fn maxmin_is_not_just_equal_split() {
        // Classic 3-flow example on a line; emulate with a ring of 3 where
        // flow A crosses two links and flows B, C one each.
        let net = ring(3, 1e9, 0.0);
        // A: 0 -> 2 the long way is 1 hop ccw; force multi-hop with 0->1->2
        // unavailable, so instead: flows (0,1), (1,2), (0,2 via cw 2 hops?).
        // On a 3-ring, 0->2 shortest is 1 hop ccw (link 2n side) — disjoint.
        // Use (0,1),(0,1),(1,2): two flows share link 0, one rides alone.
        let r = maxmin_rates(&net, &routes(&net, &[(0, 1), (0, 1), (1, 2)]));
        assert!((r[0] - 5e8).abs() < 1.0);
        assert!((r[1] - 5e8).abs() < 1.0);
        assert!((r[2] - 1e9).abs() < 1.0);
    }

    #[test]
    fn no_link_oversubscribed() {
        let net = ring(8, 1e9, 0.0);
        let pairs: Vec<_> = (0..8).map(|i| (i, (i + 3) % 8)).collect();
        let flows = routes(&net, &pairs);
        let rates = maxmin_rates(&net, &flows);
        let mut load = vec![0.0f64; net.links().len()];
        for (route, &rate) in flows.iter().zip(&rates) {
            for &l in route {
                load[l.0] += rate;
            }
        }
        for (l, &used) in load.iter().enumerate() {
            assert!(
                used <= net.links()[l].capacity_bps * (1.0 + 1e-9),
                "link {l} oversubscribed: {used}"
            );
        }
    }

    #[test]
    fn every_flow_has_a_saturated_bottleneck() {
        let net = ring(6, 1e9, 0.0);
        let pairs: Vec<_> = (0..6).map(|i| (i, (i + 2) % 6)).collect();
        let flows = routes(&net, &pairs);
        let rates = maxmin_rates(&net, &flows);
        let mut load = vec![0.0f64; net.links().len()];
        for (route, &rate) in flows.iter().zip(&rates) {
            for &l in route {
                load[l.0] += rate;
            }
        }
        // Max-min property: each flow crosses at least one (nearly)
        // saturated link.
        for route in &flows {
            assert!(route
                .iter()
                .any(|&l| { load[l.0] >= net.links()[l.0].capacity_bps * (1.0 - 1e-6) }));
        }
    }

    #[test]
    fn empty_flow_set() {
        let net = star_cluster(2, 1e9, 0.0);
        assert!(maxmin_rates(&net, &[]).is_empty());
    }
}
