//! Progressive-filling max-min fair bandwidth allocation.
//!
//! This is the heart of SimGrid's fluid network model: every active flow
//! gets the largest rate such that no link is oversubscribed and no flow can
//! be raised without lowering a flow of equal or smaller rate. The classic
//! algorithm saturates the most-contended link, freezes the flows crossing
//! it, subtracts their bandwidth and repeats.
//!
//! Numerical contract: for every flow with a non-empty route the returned
//! rate is **finite and non-negative** — degenerate capacities (zero,
//! negative, `NaN`) freeze the affected flows at a zero rate instead of
//! leaving them at the infinite sentinel, so callers can detect the stall
//! ([`crate::error::NetError::StalledFlow`]) rather than report instant
//! completion. Only flows with genuinely empty routes keep an infinite
//! rate (they complete in latency only).
//!
//! ```
//! use electrical_sim::maxmin::maxmin_rates;
//! use electrical_sim::topology::star_cluster;
//!
//! let net = star_cluster(4, 1e9, 0.0);
//! // Two flows into host 0 share its 1 GB/s downlink fairly.
//! let routes = vec![net.route(1, 0).unwrap(), net.route(2, 0).unwrap()];
//! let rates = maxmin_rates(&net, &routes);
//! assert!((rates[0] - 0.5e9).abs() < 1.0 && (rates[1] - 0.5e9).abs() < 1.0);
//! ```

use crate::graph::{LinkId, Network};

/// Relative tolerance for the per-link bottleneck tie test.
const REL_EPS: f64 = 1e-12;

/// Is `share` at (or numerically indistinguishable from) the bottleneck
/// share `best`? Compared with a **relative** epsilon scaled to the larger
/// of the two magnitudes, so links whose capacities span many orders of
/// magnitude (1 Kb/s next to 100 Gb/s) tie correctly: an absolute or
/// one-sided `best * (1 + eps)` threshold either misses ties on large
/// links (whose `remaining` carries absolute rounding error far above
/// `eps * best`) or overflows to infinity near `f64::MAX`.
#[inline]
fn at_bottleneck(share: f64, best: f64) -> bool {
    share <= best + REL_EPS * share.abs().max(best.abs())
}

/// Compute max-min fair rates (bytes/s) for `routes`, one route per flow.
///
/// Flows with empty routes are given an infinite rate (they complete in
/// latency only); callers prevent this case for real networks.
#[must_use]
pub fn maxmin_rates(net: &Network, routes: &[Vec<LinkId>]) -> Vec<f64> {
    let mut work = 0usize;
    maxmin_rates_counted(net, routes, &mut work)
}

/// [`maxmin_rates`] that also accumulates the solver's work into `work`:
/// one unit per link share evaluated and per flow bottleneck test, summed
/// over progressive-filling rounds. The fluid engines report this as
/// `solver_work` so full and incremental re-solves can be compared.
#[must_use]
pub fn maxmin_rates_counted(net: &Network, routes: &[Vec<LinkId>], work: &mut usize) -> Vec<f64> {
    let n_flows = routes.len();
    let n_links = net.links().len();
    let mut remaining: Vec<f64> = net.links().iter().map(|l| l.capacity_bps).collect();
    let mut active_on_link: Vec<usize> = vec![0; n_links];
    // Which links each flow still counts on (all of them until frozen).
    for route in routes {
        for &l in route {
            active_on_link[l.0] += 1;
        }
    }
    let links: Vec<usize> = (0..n_links).collect();
    let flows: Vec<usize> = (0..n_flows).collect();
    let mut rate = vec![f64::INFINITY; n_flows];
    progressive_fill(
        &links,
        &flows,
        routes,
        &mut remaining,
        &mut active_on_link,
        &mut rate,
        work,
    );
    rate
}

/// Progressive filling over an explicit link/flow subset.
///
/// This is the solver core shared by the full solve ([`maxmin_rates`],
/// `links`/`flows` = everything) and the incremental event engine (a
/// contention component only). `remaining` and `active` are indexed by
/// global link id and must be pre-initialized for every link in `links`
/// (capacity and active-flow count); `rate` is indexed by global flow id
/// and is written for every flow in `flows` that freezes. The caller
/// guarantees every active flow crossing a listed link is itself listed —
/// the component property that makes a restricted solve exact.
///
/// `links` and `flows` must be ascending so a restricted solve visits its
/// subset in the same order the full solve would, keeping rates
/// bit-identical between the two.
pub(crate) fn progressive_fill(
    links: &[usize],
    flows: &[usize],
    routes: &[Vec<LinkId>],
    remaining: &mut [f64],
    active: &mut [usize],
    rate: &mut [f64],
    work: &mut usize,
) {
    debug_assert!(links.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(flows.windows(2).all(|w| w[0] < w[1]));
    let mut frozen = vec![false; flows.len()];
    let mut unfrozen = flows.len();

    while unfrozen > 0 {
        // Bottleneck share: smallest fair share among links with active
        // flows. All links at that share saturate simultaneously, so every
        // flow crossing any of them freezes this round — this keeps
        // symmetric workloads (e.g. ring steps) at one round total.
        let mut best_share = f64::INFINITY;
        for &l in links {
            // Every visited link is a unit of work — the full solve scans
            // all network links per round, the incremental solve only its
            // component's.
            *work += 1;
            if active[l] > 0 {
                let share = remaining[l] / active[l] as f64;
                if share < best_share {
                    best_share = share;
                }
            }
        }
        if best_share.is_infinite() {
            // Either the remaining flows cross no active link (empty
            // routes, which legitimately keep an infinite rate) or every
            // active link produced a NaN share (corrupt capacities). The
            // latter must not leak infinite rates: freeze those flows at
            // zero so the stall is detectable downstream.
            for (k, &f) in flows.iter().enumerate() {
                if !frozen[k] && routes[f].iter().any(|&l| active[l.0] > 0) {
                    rate[f] = 0.0;
                }
            }
            break;
        }
        let mut progressed = false;
        for (k, &f) in flows.iter().enumerate() {
            if frozen[k] {
                continue;
            }
            *work += 1;
            let bottlenecked = routes[f].iter().any(|&l| {
                active[l.0] > 0 && at_bottleneck(remaining[l.0] / active[l.0] as f64, best_share)
            });
            if !bottlenecked {
                continue;
            }
            frozen[k] = true;
            progressed = true;
            unfrozen -= 1;
            // Degenerate (negative) capacities clamp to a zero rate so the
            // stall is detectable instead of running the clock backwards.
            let r = best_share.max(0.0);
            rate[f] = r;
            for &l in &routes[f] {
                remaining[l.0] = (remaining[l.0] - r).max(0.0);
                active[l.0] -= 1;
            }
        }
        if !progressed {
            // Defensive numerical corner: the bottleneck link's own tie
            // test failed. Freeze every remaining flow at its current
            // per-link fair share (never the infinite sentinel) so
            // downstream time-to-finish stays finite, then stop.
            for (k, &f) in flows.iter().enumerate() {
                if frozen[k] {
                    continue;
                }
                let mut share = f64::INFINITY;
                for &l in &routes[f] {
                    if active[l.0] > 0 {
                        let s = remaining[l.0] / active[l.0] as f64;
                        share = if s.is_nan() || share.is_nan() {
                            f64::NAN
                        } else {
                            share.min(s)
                        };
                    }
                }
                if share.is_finite() {
                    rate[f] = share.max(0.0);
                } else if share.is_nan() {
                    rate[f] = 0.0;
                }
                // An infinite share (no active link left on the route)
                // keeps the latency-only infinite sentinel.
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Link, Router};
    use crate::topology::{ring, star_cluster};

    fn routes(net: &Network, pairs: &[(usize, usize)]) -> Vec<Vec<LinkId>> {
        pairs
            .iter()
            .map(|&(s, d)| net.route(s, d).unwrap())
            .collect()
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let net = star_cluster(4, 1e9, 0.0);
        let r = maxmin_rates(&net, &routes(&net, &[(0, 1)]));
        assert!((r[0] - 1e9).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_a_common_uplink() {
        let net = star_cluster(4, 1e9, 0.0);
        // Both flows leave host 0: share its uplink.
        let r = maxmin_rates(&net, &routes(&net, &[(0, 1), (0, 2)]));
        assert!((r[0] - 5e8).abs() < 1.0);
        assert!((r[1] - 5e8).abs() < 1.0);
    }

    #[test]
    fn disjoint_flows_do_not_interfere() {
        let net = star_cluster(4, 1e9, 0.0);
        let r = maxmin_rates(&net, &routes(&net, &[(0, 1), (2, 3)]));
        assert!(r.iter().all(|&x| (x - 1e9).abs() < 1.0));
    }

    #[test]
    fn incast_shares_the_downlink() {
        let net = star_cluster(8, 1e9, 0.0);
        let pairs: Vec<_> = (1..5).map(|s| (s, 0usize)).collect();
        let r = maxmin_rates(&net, &routes(&net, &pairs));
        for &x in &r {
            assert!((x - 2.5e8).abs() < 1.0);
        }
    }

    #[test]
    fn maxmin_is_not_just_equal_split() {
        // Classic 3-flow example on a line; emulate with a ring of 3 where
        // flow A crosses two links and flows B, C one each.
        let net = ring(3, 1e9, 0.0);
        // A: 0 -> 2 the long way is 1 hop ccw; force multi-hop with 0->1->2
        // unavailable, so instead: flows (0,1), (1,2), (0,2 via cw 2 hops?).
        // On a 3-ring, 0->2 shortest is 1 hop ccw (link 2n side) — disjoint.
        // Use (0,1),(0,1),(1,2): two flows share link 0, one rides alone.
        let r = maxmin_rates(&net, &routes(&net, &[(0, 1), (0, 1), (1, 2)]));
        assert!((r[0] - 5e8).abs() < 1.0);
        assert!((r[1] - 5e8).abs() < 1.0);
        assert!((r[2] - 1e9).abs() < 1.0);
    }

    #[test]
    fn no_link_oversubscribed() {
        let net = ring(8, 1e9, 0.0);
        let pairs: Vec<_> = (0..8).map(|i| (i, (i + 3) % 8)).collect();
        let flows = routes(&net, &pairs);
        let rates = maxmin_rates(&net, &flows);
        let mut load = vec![0.0f64; net.links().len()];
        for (route, &rate) in flows.iter().zip(&rates) {
            for &l in route {
                load[l.0] += rate;
            }
        }
        for (l, &used) in load.iter().enumerate() {
            assert!(
                used <= net.links()[l].capacity_bps * (1.0 + 1e-9),
                "link {l} oversubscribed: {used}"
            );
        }
    }

    #[test]
    fn every_flow_has_a_saturated_bottleneck() {
        let net = ring(6, 1e9, 0.0);
        let pairs: Vec<_> = (0..6).map(|i| (i, (i + 2) % 6)).collect();
        let flows = routes(&net, &pairs);
        let rates = maxmin_rates(&net, &flows);
        let mut load = vec![0.0f64; net.links().len()];
        for (route, &rate) in flows.iter().zip(&rates) {
            for &l in route {
                load[l.0] += rate;
            }
        }
        // Max-min property: each flow crosses at least one (nearly)
        // saturated link.
        for route in &flows {
            assert!(route
                .iter()
                .any(|&l| { load[l.0] >= net.links()[l.0].capacity_bps * (1.0 - 1e-6) }));
        }
    }

    #[test]
    fn empty_flow_set() {
        let net = star_cluster(2, 1e9, 0.0);
        assert!(maxmin_rates(&net, &[]).is_empty());
    }

    /// Regression: a negative (corrupt) capacity used to fire the
    /// `!progressed` bail-out — `best_share * (1 + 1e-12)` moves a negative
    /// threshold *below* `best_share`, so not even the bottleneck link's own
    /// flows passed the tie test, and every unfrozen flow silently kept
    /// `rate = INFINITY` (finishing instantly downstream). Rates must now
    /// be finite and non-negative.
    #[test]
    fn negative_capacity_freezes_finite_rates() {
        let net = Network::from_parts(
            2,
            vec![
                Link {
                    capacity_bps: -1e9,
                    latency_s: 0.0,
                },
                Link {
                    capacity_bps: 1e9,
                    latency_s: 0.0,
                },
                Link {
                    capacity_bps: 1e9,
                    latency_s: 0.0,
                },
                Link {
                    capacity_bps: 1e9,
                    latency_s: 0.0,
                },
            ],
            Router::Star,
        );
        let rates = maxmin_rates(&net, &routes(&net, &[(0, 1), (1, 0)]));
        for (f, &r) in rates.iter().enumerate() {
            assert!(r.is_finite(), "flow {f} kept a non-finite rate: {r}");
            assert!(r >= 0.0, "flow {f} got a negative rate: {r}");
        }
        // The flow crossing the corrupt uplink is stalled at zero; the
        // healthy opposite direction still gets its full share.
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 1e9).abs() < 1.0);
    }

    /// Regression: a NaN capacity used to leave its flows at the infinite
    /// sentinel via the `best_share == INFINITY` exit (NaN shares never
    /// compare below infinity).
    #[test]
    fn nan_capacity_freezes_zero_not_infinity() {
        // Host 0's uplink and host 1's downlink are corrupt, so the 0 -> 1
        // flow crosses only NaN links and can never pass a bottleneck tie
        // test; the 1 -> 0 flow is healthy.
        let nan = Link {
            capacity_bps: f64::NAN,
            latency_s: 0.0,
        };
        let ok = Link {
            capacity_bps: 1e9,
            latency_s: 0.0,
        };
        let net = Network::from_parts(2, vec![nan, ok, ok, nan], Router::Star);
        let rates = maxmin_rates(&net, &routes(&net, &[(0, 1), (1, 0)]));
        assert_eq!(rates[0], 0.0, "NaN-capacity flow must freeze at zero");
        assert!((rates[1] - 1e9).abs() < 1.0);
    }

    #[test]
    fn zero_capacity_freezes_at_zero() {
        let net = star_cluster(2, 0.0, 0.0);
        let rates = maxmin_rates(&net, &routes(&net, &[(0, 1)]));
        assert_eq!(rates[0], 0.0);
    }

    /// Heterogeneous capacities spanning many orders of magnitude:
    /// 1 Kb/s (125 B/s) edge links next to 100 Gb/s (12.5e9 B/s) core
    /// links. The relative-epsilon tie test must keep the allocation
    /// feasible and bottlenecked on every flow.
    #[test]
    fn heterogeneous_capacities_stay_feasible_and_bottlenecked() {
        // Star with per-host capacities: hosts 0..2 slow (1 Kb/s), 3..6
        // fast (100 Gb/s).
        let slow = Link {
            capacity_bps: 125.0,
            latency_s: 0.0,
        };
        let fast = Link {
            capacity_bps: 12.5e9,
            latency_s: 0.0,
        };
        let mut links = Vec::new();
        for h in 0..6 {
            let l = if h < 2 { slow } else { fast };
            links.push(l); // uplink 2h
            links.push(l); // downlink 2h+1
        }
        let net = Network::from_parts(6, links, Router::Star);
        let pairs = [(0usize, 3usize), (1, 3), (2, 3), (4, 3), (2, 5), (4, 5)];
        let flows = routes(&net, &pairs);
        let rates = maxmin_rates(&net, &flows);
        let mut load = vec![0.0f64; net.links().len()];
        for (route, &rate) in flows.iter().zip(&rates) {
            assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
            for &l in route {
                load[l.0] += rate;
            }
        }
        for (l, &used) in load.iter().enumerate() {
            assert!(
                used <= net.links()[l].capacity_bps * (1.0 + 1e-9),
                "link {l} oversubscribed: {used}"
            );
        }
        for (f, route) in flows.iter().enumerate() {
            assert!(
                route
                    .iter()
                    .any(|&l| load[l.0] >= net.links()[l.0].capacity_bps * (1.0 - 1e-6)),
                "flow {f} has no saturated bottleneck"
            );
        }
        // Slow-host flows are pinned near their 125 B/s ports; fast flows
        // share the remaining fast capacity, orders of magnitude higher.
        assert!(rates[0] <= 125.0 * (1.0 + 1e-9));
        assert!(rates[3] > 1e9);
    }

    #[test]
    fn work_counter_accumulates() {
        let net = star_cluster(4, 1e9, 0.0);
        let flows = routes(&net, &[(0, 1), (0, 2)]);
        let mut work = 0usize;
        let rates = maxmin_rates_counted(&net, &flows, &mut work);
        assert_eq!(rates, maxmin_rates(&net, &flows));
        assert!(work > 0, "solver work must be counted");
    }
}
