//! Error types for the electrical network simulator.

use std::fmt;

/// Errors produced while building networks or running flows.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// Referenced a host outside the network.
    HostOutOfRange {
        /// Offending host index.
        host: usize,
        /// Number of hosts.
        hosts: usize,
    },
    /// A flow had identical endpoints.
    SelfFlow(usize),
    /// A flow of zero bytes was submitted.
    EmptyFlow {
        /// Source host.
        src: usize,
        /// Destination host.
        dst: usize,
    },
    /// No route exists between two hosts.
    NoRoute {
        /// Source host.
        src: usize,
        /// Destination host.
        dst: usize,
    },
    /// A flow was frozen at a zero rate (e.g. its route crosses a
    /// zero-capacity link) and can never finish. Returned instead of an
    /// infinite makespan.
    StalledFlow {
        /// Source host.
        src: usize,
        /// Destination host.
        dst: usize,
    },
    /// Invalid construction parameter.
    BadConfig(&'static str),
    /// A malformed fault script or recovery policy.
    Fault(wrht_kernel::FaultError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::HostOutOfRange { host, hosts } => {
                write!(f, "host {host} out of range ({hosts} hosts)")
            }
            NetError::SelfFlow(h) => write!(f, "flow from host {h} to itself"),
            NetError::EmptyFlow { src, dst } => {
                write!(f, "zero-byte flow from {src} to {dst}")
            }
            NetError::NoRoute { src, dst } => write!(f, "no route from {src} to {dst}"),
            NetError::StalledFlow { src, dst } => {
                write!(
                    f,
                    "flow from {src} to {dst} stalled at rate 0 (zero-capacity link)"
                )
            }
            NetError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            NetError::Fault(e) => write!(f, "fault script: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wrht_kernel::FaultError> for NetError {
    fn from(e: wrht_kernel::FaultError) -> Self {
        NetError::Fault(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_fields() {
        assert!(NetError::HostOutOfRange { host: 7, hosts: 4 }
            .to_string()
            .contains('7'));
        assert!(NetError::NoRoute { src: 1, dst: 2 }
            .to_string()
            .contains("no route"));
    }
}
