//! The fluid (flow-level) event loop.
//!
//! Rates are recomputed at events (flow release, latency expiry or
//! completion); between events every flow progresses linearly at its
//! max-min fair rate. A flow first sits in a latency phase equal to the sum
//! of its route's link latencies, then competes for bandwidth.
//!
//! Since the kernel unification both engines run on
//! [`wrht_kernel::EventKernel`] — the same discrete-event scheduler the
//! optical substrate uses. Payloads are *lazy*: a flow's `remaining` bytes
//! and its single pending completion event are only touched when its
//! max-min rate actually changes bits, so an event costs work proportional
//! to the affected contention component, not to the number of flows in
//! flight.
//!
//! Two engines share this module:
//!
//! * [`run_flows`] — the production engine. Rates are re-solved
//!   **incrementally**: an event only re-runs progressive filling over the
//!   contention component (flows transitively sharing links) whose
//!   active-flow set actually changed; disjoint flows keep their rates and
//!   pending completion times. Because max-min components are independent,
//!   the resulting rates are bit-identical to a full re-solve.
//! * [`run_flows_full_resolve`] — the reference engine: every event
//!   re-runs the full progressive-filling solve over all links × flows
//!   (the pre-incremental behaviour). Kept for differential tests and the
//!   solver benchmarks.
//!
//! Both engines return a typed [`NetError::StalledFlow`] when a flow is
//! frozen at rate zero (its route crosses a zero-capacity link) instead of
//! looping or reporting an infinite/zero makespan.
//!
//! The incremental engine also powers the dependency-aware DAG execution
//! in [`crate::runner::run_dag`]: flows may declare predecessor edges and
//! are released the instant their last predecessor completes.

use crate::error::{NetError, Result};
use crate::flow::FlowSpec;
use crate::graph::{LinkId, Network};
use crate::maxmin::{maxmin_rates_counted, progressive_fill};
use serde::{Deserialize, Serialize};
use wrht_kernel::{EventKernel, FaultPolicy};

/// Wake-up events of the fluid engines. `Release`/`Timer` only wake the
/// engine (promotion happens in the engine's own `EPS`-tolerant scan, so a
/// wake-up can arrive stale when its flow was promoted early). `Complete`
/// carries the *minimum* completion candidate of one contention component:
/// rescheduling per-flow on every rate change would push (and later lazily
/// discard) one heap entry per affected flow per solve — quadratic churn on
/// an incast — so each solve schedules a single event at the component's
/// earliest candidate instead, and the engine validates it on arrival
/// against the carrier flow's current candidate. Superseded entries simply
/// go stale in the heap; no event is ever cancelled.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Release(usize),
    Timer(usize),
    Complete(usize),
}

/// Completion information for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// Time the flow was released.
    pub release_s: f64,
    /// Time the flow finished delivering its payload.
    pub finish_s: f64,
}

/// Result of a fluid run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Completion time of the last flow, seconds.
    pub makespan_s: f64,
    /// Per-flow outcomes in submission order.
    pub flows: Vec<FlowOutcome>,
    /// Number of rate solver invocations. The incremental engine invokes
    /// the solver once per event whose active-flow set changed, restricted
    /// to the affected contention component; the full-resolve reference
    /// invokes it once per event over everything.
    pub rate_recomputations: usize,
    /// Total progressive-filling work (link shares evaluated plus flow
    /// bottleneck tests, summed over rounds) — the complexity metric that
    /// shows the incremental engine's saving over a full re-solve.
    pub solver_work: usize,
    /// Discrete events processed by the shared kernel (release and latency
    /// wake-ups plus completions). Both engines run on the same event
    /// kernel, so this is the denominator of the events/sec benchmark.
    pub events: u64,
}

/// Flow-level simulator over a [`Network`].
#[derive(Debug, Clone)]
pub struct FluidSimulator {
    net: Network,
    specs: Vec<FlowSpec>,
}

impl FluidSimulator {
    /// New simulator with no flows submitted.
    #[must_use]
    pub fn new(net: Network) -> Self {
        Self {
            net,
            specs: Vec::new(),
        }
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Queue a flow for the next [`FluidSimulator::run`].
    pub fn submit(&mut self, spec: FlowSpec) {
        self.specs.push(spec);
    }

    /// Queue many flows.
    pub fn submit_all<I: IntoIterator<Item = FlowSpec>>(&mut self, specs: I) {
        self.specs.extend(specs);
    }

    /// Run all submitted flows to completion and drain the queue.
    pub fn run(&mut self) -> Result<RunReport> {
        let specs = std::mem::take(&mut self.specs);
        run_flows(&self.net, &specs)
    }
}

/// Absolute tolerance used for time comparisons (seconds) and residual
/// payload (bytes): events within `EPS` coincide and residues below `EPS`
/// complete.
pub const EPS: f64 = 1e-9;

/// One flow of the dependency-aware engine ([`crate::engine::FluidEngine`]):
/// a point-to-point transfer gated on its predecessors, an absolute release
/// time and a per-flow launch delay (protocol/launch overhead paid after the
/// gates open, before the latency pipe).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineFlow {
    /// Source host.
    pub src: usize,
    /// Destination host.
    pub dst: usize,
    /// Payload bytes. 0 is legal and makes the flow a pure control gate:
    /// it completes `delay_s` after its gates open — no latency phase, no
    /// bandwidth competition — mirroring the stepped runner, which
    /// charges zero-byte transfers nothing beyond the launch overhead.
    pub bytes: u64,
    /// Earliest release time, seconds.
    pub release_s: f64,
    /// Launch overhead paid once per flow, seconds.
    pub delay_s: f64,
    /// Indices of flows that must complete first (each `<` own index).
    pub deps: Vec<usize>,
    /// Tenant job the flow belongs to (0 for single-job runs). Drives the
    /// per-job rate attribution in [`EngineReport`].
    pub job: usize,
}

/// Per-flow window reported by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct EngineOutcome {
    /// Instant the flow's gates opened (deps + release satisfied).
    pub start_s: f64,
    /// Completion instant.
    pub finish_s: f64,
}

/// Result of a dependency-aware engine run.
///
/// The three `job_*` vectors are indexed by [`EngineFlow::job`] (length =
/// max job + 1) and attribute the max-min rate solution to tenants: between
/// two events every job's aggregate allocated rate is known exactly, so the
/// engine integrates it over the interval (`job_service_bytes`), accumulates
/// the time the job had at least one transmitting flow (`job_active_s`) and
/// records the largest aggregate allocation it ever held
/// (`job_peak_rate_bps`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct EngineReport {
    pub makespan_s: f64,
    pub outcomes: Vec<EngineOutcome>,
    pub rate_recomputations: usize,
    pub solver_work: usize,
    /// Discrete events processed by the kernel (wake-ups + completions).
    pub events: u64,
    pub job_active_s: Vec<f64>,
    pub job_service_bytes: Vec<f64>,
    pub job_peak_rate_bps: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) enum Phase {
    /// Waiting for predecessors to complete.
    Blocked,
    /// Predecessors done; waiting for its release time.
    Pending,
    /// In the launch-delay + latency pipe until the given time.
    Latency(f64),
    /// Transmitting; `remaining` bytes to go.
    Active,
    Done,
    /// Permanently failed by a fault (never constructed by the clean
    /// engine): terminal like `Done`, but with no completion instant.
    Failed,
}

/// The dependency-aware fluid engine with incremental max-min re-solves.
///
/// Generalizes the classic flow loop: flows may declare predecessor edges
/// (released the instant the last predecessor completes), an absolute
/// release time and a launch delay. With no deps and no delay this is
/// bit-identical to [`run_flows_full_resolve`] on the same specs — the
/// incremental component solve yields the same rates as a full solve, and
/// the event arithmetic is unchanged.
///
/// Since the streaming refactor this is a thin closed-set driver over
/// [`crate::engine::FluidEngine`]: the whole flow list is injected as one
/// batch at time zero and the engine is pumped to idle.
pub(crate) fn run_engine(net: &Network, flows: &[EngineFlow]) -> Result<EngineReport> {
    let mut eng = crate::engine::FluidEngine::new(net);
    eng.inject(flows)?;
    while eng.step()?.is_some() {}
    Ok(eng.into_report())
}

/// One substrate-lowered fault of the faulted engine ([`run_engine_faulted`]).
/// `FaultScript` lowering happens in the runner: a `LinkDegrade` becomes one
/// `SetLinkFactor`, a `LinkFlap` becomes `SetLinkFactor { factor: 0.0 }`
/// plus a restoring `SetLinkFactor { factor: 1.0 }` at the flap's end.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EngineFault {
    /// Multiply the link's capacity by `factor` from the instant onward
    /// (`0.0` = dark: flows crossing it are suspended, not aborted).
    SetLinkFactor { link: usize, factor: f64 },
    /// The node fails permanently; flows touching it can never complete.
    NodeDown { node: usize },
    /// Flows touching the node get their allocated rate divided by
    /// `slowdown` (the freed share is *not* redistributed to other flows).
    Straggle { node: usize, slowdown: f64 },
}

/// Result of a faulted engine run: the clean report shape plus per-flow
/// casualty accounting. Failed flows keep `finish_s == 0.0` and are
/// excluded from the makespan.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FaultEngineReport {
    pub base: EngineReport,
    /// Per-flow: permanently failed by a fault.
    pub failed: Vec<bool>,
    /// Per-flow: killed while actively transmitting.
    pub aborted: Vec<u32>,
    /// Instant the first flow was failed, aborted, or slowed mid-flight by
    /// a fault (a degrade/straggle catching active flows counts), if any.
    pub first_impact_s: Option<f64>,
}

/// [`run_engine`] under a list of timestamped faults, scheduled through the
/// same kernel as releases, timers and completions.
///
/// Semantics: `SetLinkFactor` scales the link's capacity and triggers an
/// incremental max-min re-solve of the affected contention component at the
/// fault instant (factor `0.0` suspends crossing flows at rate zero — fluid
/// progress freezes, no [`NetError::StalledFlow`] — until a later restore);
/// `Straggle` caps flows touching the node at `1/slowdown` of their max-min
/// share; `NodeDown` permanently fails every unfinished flow touching the
/// node. Under [`FaultPolicy::FailJob`] a failed flow fails its whole job;
/// under `RetryAfter`/`Replan` the failed flow's dependents are released so
/// survivors re-plan (retrying a dead endpoint is futile, so the two
/// policies coincide on this substrate — nothing transient is ever lost,
/// suspension already preserves progress).
///
/// Same-instant order: completions coalesced with a fault at a bit-
/// identical instant are applied **before** the fault. With an empty fault
/// list callers should use [`run_engine`] — the runner delegates there so
/// zero-fault runs stay bit-exact on the clean code path.
pub(crate) fn run_engine_faulted(
    net: &Network,
    flows: &[EngineFlow],
    faults: &[(f64, EngineFault)],
    policy: FaultPolicy,
) -> Result<FaultEngineReport> {
    let n = flows.len();
    if n == 0 {
        return Ok(FaultEngineReport {
            base: EngineReport {
                makespan_s: 0.0,
                outcomes: Vec::new(),
                rate_recomputations: 0,
                solver_work: 0,
                events: 0,
                job_active_s: Vec::new(),
                job_service_bytes: Vec::new(),
                job_peak_rate_bps: Vec::new(),
            },
            failed: Vec::new(),
            aborted: Vec::new(),
            first_impact_s: None,
        });
    }

    #[derive(Debug, Clone, Copy)]
    enum FEv {
        Release(usize),
        Timer(usize),
        Complete(usize),
        Fault(usize),
    }

    // Validate and pre-route everything up front (same checks as the clean
    // engine).
    let mut routes: Vec<Vec<LinkId>> = Vec::with_capacity(n);
    let mut latencies: Vec<f64> = Vec::with_capacity(n);
    for (i, f) in flows.iter().enumerate() {
        if f.deps.iter().any(|&d| d >= i) {
            return Err(NetError::BadConfig("dependency must precede its flow"));
        }
        if !f.release_s.is_finite() || f.release_s < 0.0 {
            return Err(NetError::BadConfig("release time must be finite and >= 0"));
        }
        routes.push(net.route(f.src, f.dst)?);
        latencies.push(net.route_latency(f.src, f.dst)?);
    }
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut missing: Vec<usize> = vec![0; n];
    for (i, f) in flows.iter().enumerate() {
        missing[i] = f.deps.len();
        for &d in &f.deps {
            dependents[d].push(i);
        }
    }

    let n_links = net.links().len();
    let mut phase: Vec<Phase> = (0..n)
        .map(|i| {
            if missing[i] == 0 {
                Phase::Pending
            } else {
                Phase::Blocked
            }
        })
        .collect();
    let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes as f64).collect();
    let mut start = vec![0.0f64; n];
    let mut finish = vec![0.0f64; n];
    let mut rate = vec![0.0f64; n];
    let mut now = 0.0f64;

    let mut kernel: EventKernel<FEv> = EventKernel::with_capacity(n + faults.len());
    for (fi, &(at_s, _)) in faults.iter().enumerate() {
        kernel
            .schedule_at(at_s, FEv::Fault(fi))
            .expect("validated fault time");
    }
    let mut release_scheduled = vec![false; n];
    let mut last_update = vec![0.0f64; n];
    let mut cand = vec![f64::INFINITY; n];
    let mut sched_cand = vec![f64::INFINITY; n];
    let mut old_rate_scratch: Vec<f64> = Vec::new();
    let mut batch: Vec<FEv> = Vec::new();

    let mut flows_on_link: Vec<Vec<usize>> = vec![Vec::new(); n_links];
    let mut dirty: Vec<usize> = Vec::new();
    let mut link_seen = vec![false; n_links];
    let mut flow_seen = vec![false; n];
    let mut flow_comp = vec![0u32; n];
    let mut comp_min: Vec<(f64, usize)> = Vec::new();
    let mut cap_scratch = vec![0.0f64; n_links];
    let mut count_scratch = vec![0usize; n_links];
    let mut recomputations = 0usize;
    let mut solver_work = 0usize;

    // Fault state.
    let mut link_factor = vec![1.0f64; n_links];
    let mut node_slow = vec![1.0f64; net.hosts()];
    let mut flow_slow = vec![1.0f64; n];
    let mut aborted = vec![0u32; n];
    let mut first_impact: Option<f64> = None;
    let n_jobs = flows.iter().map(|f| f.job + 1).max().unwrap_or(0);
    let mut jobs_to_fail = vec![false; n_jobs];

    let mut job_active_s = vec![0.0f64; n_jobs];
    let mut job_service_bytes = vec![0.0f64; n_jobs];
    let mut job_peak_rate = vec![0.0f64; n_jobs];
    let mut job_agg_rate = vec![0.0f64; n_jobs];
    let mut job_busy = vec![false; n_jobs];

    loop {
        // Promote flows whose gates opened or timers expired (fixpoint, as
        // in the clean engine).
        loop {
            let mut unblocked = false;
            for i in 0..n {
                match phase[i] {
                    Phase::Pending if flows[i].release_s <= now + EPS => {
                        start[i] = now;
                        let pipe = if remaining[i] <= EPS {
                            flows[i].delay_s
                        } else {
                            flows[i].delay_s + latencies[i]
                        };
                        if pipe > 0.0 {
                            phase[i] = Phase::Latency(now + pipe);
                            kernel
                                .schedule_at(now + pipe, FEv::Timer(i))
                                .expect("latency expiry is ahead of the clock");
                        } else if remaining[i] <= EPS {
                            phase[i] = Phase::Done;
                            finish[i] = now;
                            for &dep in &dependents[i] {
                                missing[dep] -= 1;
                                unblocked = true;
                            }
                        } else {
                            phase[i] = Phase::Active;
                            for &l in &routes[i] {
                                flows_on_link[l.0].push(i);
                                dirty.push(l.0);
                            }
                        }
                    }
                    Phase::Latency(t) if t <= now + EPS => {
                        if remaining[i] <= EPS {
                            phase[i] = Phase::Done;
                            finish[i] = now.max(t);
                            for &dep in &dependents[i] {
                                missing[dep] -= 1;
                                unblocked = true;
                            }
                        } else {
                            phase[i] = Phase::Active;
                            for &l in &routes[i] {
                                flows_on_link[l.0].push(i);
                                dirty.push(l.0);
                            }
                        }
                    }
                    Phase::Pending if !release_scheduled[i] => {
                        release_scheduled[i] = true;
                        kernel
                            .schedule_at(flows[i].release_s, FEv::Release(i))
                            .expect("pending release is ahead of the clock");
                    }
                    Phase::Blocked if missing[i] == 0 => {
                        phase[i] = Phase::Pending;
                        unblocked = true;
                    }
                    _ => {}
                }
            }
            if !unblocked {
                break;
            }
        }

        // Incremental per-component re-solve, with faulted capacities and
        // straggle caps layered on top of the clean arithmetic.
        if !dirty.is_empty() {
            let mut comp_links: Vec<usize> = Vec::new();
            let mut comp_flows: Vec<usize> = Vec::new();
            let mut stack: Vec<usize> = Vec::new();
            let mut n_comps = 0usize;
            for &seed in &dirty {
                if link_seen[seed] {
                    continue;
                }
                link_seen[seed] = true;
                comp_links.push(seed);
                stack.push(seed);
                let mut found_flow = false;
                while let Some(l) = stack.pop() {
                    for &f in &flows_on_link[l] {
                        if !flow_seen[f] {
                            flow_seen[f] = true;
                            flow_comp[f] = u32::try_from(n_comps).expect("component count");
                            comp_flows.push(f);
                            found_flow = true;
                            for &l2 in &routes[f] {
                                if !link_seen[l2.0] {
                                    link_seen[l2.0] = true;
                                    comp_links.push(l2.0);
                                    stack.push(l2.0);
                                }
                            }
                        }
                    }
                }
                if found_flow {
                    n_comps += 1;
                }
            }
            comp_links.sort_unstable();
            comp_flows.sort_unstable();
            if !comp_flows.is_empty() {
                recomputations += 1;
                for &l in &comp_links {
                    // The one capacity difference from the clean engine.
                    cap_scratch[l] = net.links()[l].capacity_bps * link_factor[l];
                    count_scratch[l] = flows_on_link[l].len();
                }
                old_rate_scratch.clear();
                old_rate_scratch.extend(comp_flows.iter().map(|&f| rate[f]));
                progressive_fill(
                    &comp_links,
                    &comp_flows,
                    &routes,
                    &mut cap_scratch,
                    &mut count_scratch,
                    &mut rate,
                    &mut solver_work,
                );
                // Straggle cap: the node processes at 1/slowdown, and the
                // share other flows could have claimed is left on the table
                // (max-min redistribution would hide the straggler).
                for &f in &comp_flows {
                    if flow_slow[f] > 1.0 {
                        rate[f] /= flow_slow[f];
                    }
                }
                for (k, &f) in comp_flows.iter().enumerate() {
                    if rate[f].is_nan() || rate[f] <= 0.0 {
                        // A dark link (flap in progress) suspends its flows:
                        // progress freezes until the restoring fault dirties
                        // the link again. Any other zero rate is the clean
                        // engine's permanent stall.
                        // wrht-analyze: allow(r6, reason = "exact-zero sentinel: suspension assigns the literal 0.0 rate, never a computed value")
                        let zero_rate = rate[f] == 0.0;
                        // wrht-analyze: allow(r6, reason = "exact-zero sentinel: a dark link's factor is the literal 0.0, never a computed value")
                        let on_dark_link = routes[f].iter().any(|&l| link_factor[l.0] == 0.0);
                        let suspended = zero_rate && on_dark_link;
                        if !suspended {
                            return Err(NetError::StalledFlow {
                                src: flows[f].src,
                                dst: flows[f].dst,
                            });
                        }
                    }
                    if rate[f].to_bits() == old_rate_scratch[k].to_bits() {
                        continue;
                    }
                    remaining[f] -= old_rate_scratch[k] * (now - last_update[f]);
                    last_update[f] = now;
                    // wrht-analyze: allow(r6, reason = "exact-zero sentinel: suspension writes the literal 0.0 rate, never a computed value")
                    cand[f] = if rate[f] == 0.0 {
                        // Suspended: no completion candidate until restored.
                        f64::INFINITY
                    } else if rate[f].is_finite() {
                        (now + remaining[f] / rate[f]).max(now)
                    } else {
                        now
                    };
                }
                comp_min.clear();
                comp_min.resize(n_comps, (f64::INFINITY, usize::MAX));
                for &f in &comp_flows {
                    let c = flow_comp[f] as usize;
                    if cand[f] < comp_min[c].0 {
                        comp_min[c] = (cand[f], f);
                    }
                }
                for &(t, f) in &comp_min {
                    if f != usize::MAX && sched_cand[f].to_bits() != t.to_bits() {
                        sched_cand[f] = t;
                        kernel
                            .schedule_at(t, FEv::Complete(f))
                            .expect("completion candidate is ahead of the clock");
                    }
                }
            }
            for &l in &comp_links {
                link_seen[l] = false;
            }
            for &f in &comp_flows {
                flow_seen[f] = false;
            }
            dirty.clear();
        }

        // Pop the next live batch (fault events are always live).
        let batch_time = loop {
            batch.clear();
            match kernel.pop_batch(&mut batch) {
                None => break None,
                Some(t) => {
                    let mut live = false;
                    for ev in &batch {
                        match *ev {
                            FEv::Release(i) => live |= phase[i] == Phase::Pending,
                            FEv::Timer(i) => live |= matches!(phase[i], Phase::Latency(_)),
                            FEv::Complete(i) => {
                                if sched_cand[i].to_bits() == t.to_bits() {
                                    sched_cand[i] = f64::INFINITY;
                                }
                                live |=
                                    phase[i] == Phase::Active && cand[i].to_bits() == t.to_bits();
                            }
                            FEv::Fault(_) => live = true,
                        }
                    }
                    if live {
                        break Some(t);
                    }
                }
            }
        };
        let Some(next) = batch_time else {
            if phase
                .iter()
                .all(|&p| matches!(p, Phase::Done | Phase::Failed))
            {
                break;
            }
            if phase.contains(&Phase::Failed) {
                // Survivors stranded behind failed flows (e.g. cross-job
                // dependents under FailJob) are casualties, not a malformed
                // DAG.
                for p in phase.iter_mut() {
                    if !matches!(*p, Phase::Done | Phase::Failed) {
                        *p = Phase::Failed;
                    }
                }
                break;
            }
            return Err(NetError::BadConfig("unreachable flows in dependency DAG"));
        };
        let dt = (next - now).max(0.0);

        // Attribute rates to jobs over [now, next]. Suspended flows (rate
        // zero during a flap) are Active but neither transmit nor count as
        // busy time.
        job_agg_rate.fill(0.0);
        job_busy.fill(false);
        for i in 0..n {
            if phase[i] == Phase::Active && rate[i].is_finite() && rate[i] > 0.0 {
                job_agg_rate[flows[i].job] += rate[i];
                job_busy[flows[i].job] = true;
            }
        }
        for j in 0..n_jobs {
            if job_busy[j] {
                job_peak_rate[j] = job_peak_rate[j].max(job_agg_rate[j]);
                if dt > 0.0 {
                    job_active_s[j] += dt;
                    job_service_bytes[j] += job_agg_rate[j] * dt;
                }
            }
        }

        // Apply the instant: completions first (found by candidate bits, as
        // in the clean engine)...
        for i in 0..n {
            if phase[i] == Phase::Active && cand[i].to_bits() == next.to_bits() {
                remaining[i] = 0.0;
                phase[i] = Phase::Done;
                finish[i] = next;
                for &l in &routes[i] {
                    flows_on_link[l.0].retain(|&f| f != i);
                    dirty.push(l.0);
                }
                for &dep in &dependents[i] {
                    missing[dep] -= 1;
                }
            }
        }
        // ... then the faults coalesced at this instant (documented order: a
        // flow finishing at exactly the fault instant is finished, not
        // failed).
        let mut any_fault = false;
        for ev in &batch {
            let FEv::Fault(fi) = *ev else { continue };
            any_fault = true;
            match faults[fi].1 {
                EngineFault::SetLinkFactor { link, factor } => {
                    // A degrade that catches flows mid-flight is the fault's
                    // first observable impact; a restore (factor rising) is
                    // recovery, not impact.
                    if factor < link_factor[link] && !flows_on_link[link].is_empty() {
                        first_impact.get_or_insert(next);
                    }
                    link_factor[link] = factor;
                    dirty.push(link);
                }
                EngineFault::Straggle { node, slowdown } => {
                    node_slow[node] = node_slow[node].max(slowdown);
                    for i in 0..n {
                        if flows[i].src == node || flows[i].dst == node {
                            let slow = node_slow[flows[i].src].max(node_slow[flows[i].dst]);
                            if slow > flow_slow[i] {
                                flow_slow[i] = slow;
                                if phase[i] == Phase::Active {
                                    first_impact.get_or_insert(next);
                                    for &l in &routes[i] {
                                        dirty.push(l.0);
                                    }
                                }
                            }
                        }
                    }
                }
                EngineFault::NodeDown { node } => {
                    // Ascending index order lets failure cascade through
                    // dependents that also touch the node in one sweep.
                    for i in 0..n {
                        if (flows[i].src == node || flows[i].dst == node)
                            && !matches!(phase[i], Phase::Done | Phase::Failed)
                        {
                            if phase[i] == Phase::Active {
                                aborted[i] += 1;
                                for &l in &routes[i] {
                                    flows_on_link[l.0].retain(|&f| f != i);
                                    dirty.push(l.0);
                                }
                            }
                            phase[i] = Phase::Failed;
                            first_impact.get_or_insert(next);
                            match policy {
                                FaultPolicy::FailJob => jobs_to_fail[flows[i].job] = true,
                                FaultPolicy::RetryAfter(_) | FaultPolicy::Replan => {
                                    for &dep in &dependents[i] {
                                        missing[dep] -= 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if any_fault && jobs_to_fail.iter().any(|&f| f) {
            for i in 0..n {
                if jobs_to_fail[flows[i].job] && !matches!(phase[i], Phase::Done | Phase::Failed) {
                    if phase[i] == Phase::Active {
                        for &l in &routes[i] {
                            flows_on_link[l.0].retain(|&f| f != i);
                            dirty.push(l.0);
                        }
                    }
                    phase[i] = Phase::Failed;
                    first_impact.get_or_insert(next);
                }
            }
            jobs_to_fail.iter_mut().for_each(|f| *f = false);
        }
        now = next;

        if phase
            .iter()
            .all(|&p| matches!(p, Phase::Done | Phase::Failed))
        {
            break;
        }
    }

    let makespan = finish.iter().copied().fold(0.0f64, f64::max);
    let failed: Vec<bool> = phase.iter().map(|&p| p == Phase::Failed).collect();
    Ok(FaultEngineReport {
        base: EngineReport {
            makespan_s: makespan,
            outcomes: start
                .iter()
                .zip(&finish)
                .map(|(&start_s, &finish_s)| EngineOutcome { start_s, finish_s })
                .collect(),
            rate_recomputations: recomputations,
            solver_work,
            events: kernel.events_processed(),
            job_active_s,
            job_service_bytes,
            job_peak_rate_bps: job_peak_rate,
        },
        failed,
        aborted,
        first_impact_s: first_impact,
    })
}

/// Simulate `specs` over `net` and report completion times.
///
/// Rates are re-solved incrementally per contention component (see the
/// module docs); results are bit-identical to
/// [`run_flows_full_resolve`], with less solver work.
pub fn run_flows(net: &Network, specs: &[FlowSpec]) -> Result<RunReport> {
    for s in specs {
        if s.bytes == 0 {
            return Err(NetError::EmptyFlow {
                src: s.src,
                dst: s.dst,
            });
        }
    }
    let flows: Vec<EngineFlow> = specs
        .iter()
        .map(|s| EngineFlow {
            src: s.src,
            dst: s.dst,
            bytes: s.bytes,
            release_s: s.release_s(),
            delay_s: 0.0,
            deps: Vec::new(),
            job: 0,
        })
        .collect();
    let report = run_engine(net, &flows)?;
    Ok(RunReport {
        makespan_s: report.makespan_s,
        flows: specs
            .iter()
            .zip(&report.outcomes)
            .map(|(s, o)| FlowOutcome {
                release_s: s.release_s(),
                finish_s: o.finish_s,
            })
            .collect(),
        rate_recomputations: report.rate_recomputations,
        solver_work: report.solver_work,
        events: report.events,
    })
}

/// The pre-incremental reference engine: every event re-runs the full
/// progressive-filling solve over all links × flows. Used by differential
/// tests (its outcomes must match [`run_flows`] bit-exactly) and by the
/// `maxmin_incremental` benchmark as the cost baseline.
pub fn run_flows_full_resolve(net: &Network, specs: &[FlowSpec]) -> Result<RunReport> {
    let n = specs.len();
    if n == 0 {
        return Ok(RunReport {
            makespan_s: 0.0,
            flows: Vec::new(),
            rate_recomputations: 0,
            solver_work: 0,
            events: 0,
        });
    }

    // Validate and pre-route everything up front.
    let mut routes: Vec<Vec<LinkId>> = Vec::with_capacity(n);
    let mut latencies: Vec<f64> = Vec::with_capacity(n);
    for s in specs {
        if s.bytes == 0 {
            return Err(NetError::EmptyFlow {
                src: s.src,
                dst: s.dst,
            });
        }
        routes.push(net.route(s.src, s.dst)?);
        latencies.push(net.route_latency(s.src, s.dst)?);
    }

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum SimplePhase {
        Pending,
        Latency(f64),
        Active,
        Done,
    }

    let mut phase: Vec<SimplePhase> = vec![SimplePhase::Pending; n];
    let mut remaining: Vec<f64> = specs.iter().map(|s| s.bytes as f64).collect();
    let mut finish: Vec<f64> = vec![0.0; n];
    let mut rate = vec![0.0f64; n];
    let mut now = 0.0f64;
    let mut recomputations = 0usize;
    let mut solver_work = 0usize;

    // Same event-kernel discipline as `run_engine` — lazy `remaining`,
    // candidates recomputed only when a flow's rate changes bits, and a
    // single pending `Complete` event at the earliest candidate (the full
    // solve treats all active flows as one component, so the global
    // minimum is the right granularity where `run_engine` uses one event
    // per true component). Because max-min components are independent, the
    // full solve changes exactly the same rate bits at exactly the same
    // instants as the incremental component solve, which is what keeps the
    // two engines bit-identical.
    let mut kernel: EventKernel<Ev> = EventKernel::with_capacity(n);
    let mut release_scheduled = vec![false; n];
    let mut last_update = vec![0.0f64; n];
    let mut cand = vec![f64::INFINITY; n];
    let mut sched_cand = vec![f64::INFINITY; n];
    let mut batch: Vec<Ev> = Vec::new();

    loop {
        // Promote pending/latency flows whose timers expired.
        for i in 0..n {
            match phase[i] {
                SimplePhase::Pending if specs[i].release_s() <= now + EPS => {
                    let ready = now + latencies[i];
                    if latencies[i] > 0.0 {
                        phase[i] = SimplePhase::Latency(ready);
                        kernel
                            .schedule_at(ready, Ev::Timer(i))
                            .expect("latency expiry is ahead of the clock");
                    } else {
                        phase[i] = SimplePhase::Active;
                    }
                }
                SimplePhase::Latency(t) if t <= now + EPS => phase[i] = SimplePhase::Active,
                // Future release: schedule its wake-up exactly once.
                SimplePhase::Pending if !release_scheduled[i] => {
                    release_scheduled[i] = true;
                    kernel
                        .schedule_at(specs[i].release_s(), Ev::Release(i))
                        .expect("pending release is ahead of the clock");
                }
                _ => {}
            }
        }

        // Gather active flows and recompute ALL rates from scratch.
        let active_idx: Vec<usize> = (0..n)
            .filter(|&i| phase[i] == SimplePhase::Active)
            .collect();
        if !active_idx.is_empty() {
            recomputations += 1;
            let active_routes: Vec<Vec<LinkId>> =
                active_idx.iter().map(|&i| routes[i].clone()).collect();
            let rates = maxmin_rates_counted(net, &active_routes, &mut solver_work);
            for (k, &i) in active_idx.iter().enumerate() {
                if rates[k].is_nan() || rates[k] <= 0.0 {
                    return Err(NetError::StalledFlow {
                        src: specs[i].src,
                        dst: specs[i].dst,
                    });
                }
                if rates[k].to_bits() == rate[i].to_bits() {
                    continue;
                }
                remaining[i] -= rate[i] * (now - last_update[i]);
                last_update[i] = now;
                rate[i] = rates[k];
                cand[i] = if rate[i].is_finite() {
                    (now + remaining[i] / rate[i]).max(now)
                } else {
                    now
                };
            }
            let mut best = (f64::INFINITY, usize::MAX);
            for &i in &active_idx {
                if cand[i] < best.0 {
                    best = (cand[i], i);
                }
            }
            let (t, f) = best;
            if f != usize::MAX && sched_cand[f].to_bits() != t.to_bits() {
                sched_cand[f] = t;
                kernel
                    .schedule_at(t, Ev::Complete(f))
                    .expect("completion candidate is ahead of the clock");
            }
        }

        // Next batch of same-instant events; stale wake-ups (flows promoted
        // EPS-early) and superseded candidates only advance the kernel
        // clock. Same validation-on-pop as `run_engine`.
        let batch_time = loop {
            batch.clear();
            match kernel.pop_batch(&mut batch) {
                None => break None,
                Some(t) => {
                    let mut live = false;
                    for ev in &batch {
                        match *ev {
                            Ev::Release(i) => live |= phase[i] == SimplePhase::Pending,
                            Ev::Timer(i) => {
                                live |= matches!(phase[i], SimplePhase::Latency(_));
                            }
                            Ev::Complete(i) => {
                                if sched_cand[i].to_bits() == t.to_bits() {
                                    sched_cand[i] = f64::INFINITY;
                                }
                                live |= phase[i] == SimplePhase::Active
                                    && cand[i].to_bits() == t.to_bits();
                            }
                        }
                    }
                    if live {
                        break Some(t);
                    }
                }
            }
        };
        let Some(next) = batch_time else {
            break; // All done (no dependencies, so the queue only drains).
        };

        // Completions by candidate, not by carrier (see `run_engine`).
        batch.clear();
        for i in 0..n {
            if phase[i] == SimplePhase::Active && cand[i].to_bits() == next.to_bits() {
                remaining[i] = 0.0;
                phase[i] = SimplePhase::Done;
                finish[i] = next;
            }
        }
        now = next;

        if phase.iter().all(|&p| p == SimplePhase::Done) {
            break;
        }
    }

    let makespan = finish.iter().copied().fold(0.0f64, f64::max);
    Ok(RunReport {
        makespan_s: makespan,
        flows: specs
            .iter()
            .zip(&finish)
            .map(|(s, &f)| FlowOutcome {
                release_s: s.release_s(),
                finish_s: f,
            })
            .collect(),
        rate_recomputations: recomputations,
        solver_work,
        events: kernel.events_processed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ring, star_cluster};

    #[test]
    fn single_flow_latency_plus_serialization() {
        let net = star_cluster(2, 1e9, 1e-6);
        let mut sim = FluidSimulator::new(net);
        sim.submit(FlowSpec::new(0, 1, 1_000_000)); // 1 MB
        let r = sim.run().unwrap();
        // 2 links of 1 us latency, then 1 MB at 1 GB/s = 1 ms.
        assert!((r.makespan_s - (2e-6 + 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn sharing_doubles_completion() {
        let net = star_cluster(4, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        sim.submit_all([
            FlowSpec::new(0, 1, 1_000_000),
            FlowSpec::new(0, 2, 1_000_000),
        ]);
        let r = sim.run().unwrap();
        assert!((r.makespan_s - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn freed_bandwidth_speeds_up_survivors() {
        let net = star_cluster(4, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        // Short and long flow share an uplink; after the short one finishes
        // the long one runs at full rate.
        sim.submit_all([FlowSpec::new(0, 1, 500_000), FlowSpec::new(0, 2, 1_500_000)]);
        let r = sim.run().unwrap();
        // Phase 1: both at 0.5 GB/s until the short flow ends at t=1ms
        // (0.5 MB each transferred). Phase 2: 1.0 MB left at 1 GB/s = 1 ms.
        assert!((r.flows[0].finish_s - 1e-3).abs() < 1e-9);
        assert!((r.flows[1].finish_s - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn staggered_release() {
        let net = star_cluster(4, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        sim.submit_all([
            FlowSpec::new(0, 1, 1_000_000),
            FlowSpec::released_at(0, 2, 1_000_000, 2e-3),
        ]);
        let r = sim.run().unwrap();
        // First finishes alone at 1 ms; second starts at 2 ms, alone, ends 3 ms.
        assert!((r.flows[0].finish_s - 1e-3).abs() < 1e-9);
        assert!((r.flows[1].finish_s - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn ring_neighbor_exchange_is_contention_free() {
        let net = ring(8, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        sim.submit_all((0..8).map(|i| FlowSpec::new(i, (i + 1) % 8, 1_000_000)));
        let r = sim.run().unwrap();
        assert!((r.makespan_s - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn empty_run() {
        let net = star_cluster(2, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        let r = sim.run().unwrap();
        assert_eq!(r.makespan_s, 0.0);
    }

    #[test]
    fn zero_byte_flow_rejected() {
        let net = star_cluster(2, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        sim.submit(FlowSpec::new(0, 1, 0));
        assert!(sim.run().is_err());
    }

    #[test]
    fn submitting_after_run_starts_fresh() {
        let net = star_cluster(2, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        sim.submit(FlowSpec::new(0, 1, 1_000));
        sim.run().unwrap();
        sim.submit(FlowSpec::new(1, 0, 1_000));
        let r = sim.run().unwrap();
        assert_eq!(r.flows.len(), 1);
    }

    /// Satellite regression: a flow crossing a zero-capacity link is frozen
    /// at rate 0; the engine must fail typed instead of looping or
    /// reporting an infinite/zero makespan.
    #[test]
    fn zero_capacity_link_is_a_typed_stall() {
        let net = star_cluster(4, 0.0, 0.0);
        let err = run_flows(&net, &[FlowSpec::new(0, 1, 1_000)]).unwrap_err();
        assert_eq!(err, NetError::StalledFlow { src: 0, dst: 1 });
        let err = run_flows_full_resolve(&net, &[FlowSpec::new(0, 1, 1_000)]).unwrap_err();
        assert_eq!(err, NetError::StalledFlow { src: 0, dst: 1 });
    }

    /// The incremental engine must agree bit-exactly with the full-resolve
    /// reference — same makespan, same per-flow finishes — while doing no
    /// more solver work.
    #[test]
    fn incremental_matches_full_resolve_bit_exactly() {
        let net = star_cluster(8, 1e9, 500e-9);
        let specs: Vec<FlowSpec> = vec![
            FlowSpec::new(0, 1, 1_000_000),
            FlowSpec::new(0, 2, 700_000),
            FlowSpec::new(3, 4, 900_000),
            FlowSpec::released_at(5, 1, 400_000, 3e-4),
            FlowSpec::new(6, 7, 123_456),
        ];
        let a = run_flows(&net, &specs).unwrap();
        let b = run_flows_full_resolve(&net, &specs).unwrap();
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
        for (x, y) in a.flows.iter().zip(&b.flows) {
            assert_eq!(x.finish_s.to_bits(), y.finish_s.to_bits());
        }
        assert!(
            a.solver_work <= b.solver_work,
            "incremental {} vs full {}",
            a.solver_work,
            b.solver_work
        );
    }

    /// Disjoint components must not be re-solved when an unrelated flow
    /// completes.
    #[test]
    fn disjoint_completions_skip_unaffected_components() {
        let net = star_cluster(8, 1e9, 0.0);
        // Three disjoint pairs with different sizes: three completion
        // events, each only dirtying its own pair of links.
        let specs = vec![
            FlowSpec::new(0, 1, 1_000_000),
            FlowSpec::new(2, 3, 2_000_000),
            FlowSpec::new(4, 5, 3_000_000),
        ];
        let a = run_flows(&net, &specs).unwrap();
        let b = run_flows_full_resolve(&net, &specs).unwrap();
        assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
        // Full resolve solves 3 flows, then 2, then 1; incremental solves
        // each pair exactly once (at activation) and never again.
        assert!(
            a.solver_work < b.solver_work,
            "incremental {} vs full {}",
            a.solver_work,
            b.solver_work
        );
    }

    #[test]
    fn dependency_chain_serializes_flows() {
        let net = star_cluster(4, 1e9, 0.0);
        let flows = vec![
            EngineFlow {
                src: 0,
                dst: 1,
                bytes: 1_000_000,
                release_s: 0.0,
                delay_s: 0.0,
                deps: vec![],
                job: 0,
            },
            EngineFlow {
                src: 1,
                dst: 2,
                bytes: 1_000_000,
                release_s: 0.0,
                delay_s: 0.0,
                deps: vec![0],
                job: 0,
            },
        ];
        let r = run_engine(&net, &flows).unwrap();
        assert!((r.outcomes[0].finish_s - 1e-3).abs() < 1e-12);
        assert!((r.outcomes[1].start_s - 1e-3).abs() < 1e-12);
        assert!((r.makespan_s - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn zero_byte_engine_flow_gates_dependents() {
        let net = star_cluster(4, 1e9, 0.0);
        let flows = vec![
            EngineFlow {
                src: 0,
                dst: 1,
                bytes: 0,
                release_s: 1e-3,
                delay_s: 0.0,
                deps: vec![],
                job: 0,
            },
            EngineFlow {
                src: 1,
                dst: 2,
                bytes: 1_000_000,
                release_s: 0.0,
                delay_s: 0.0,
                deps: vec![0],
                job: 0,
            },
        ];
        let r = run_engine(&net, &flows).unwrap();
        // The zero-byte flow completes instantly at its release; the
        // dependent starts right there.
        assert!((r.outcomes[0].finish_s - 1e-3).abs() < 1e-12);
        assert!((r.outcomes[1].start_s - 1e-3).abs() < 1e-12);
        assert!((r.makespan_s - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn forward_dependency_is_rejected() {
        let net = star_cluster(4, 1e9, 0.0);
        let flows = vec![EngineFlow {
            src: 0,
            dst: 1,
            bytes: 1,
            release_s: 0.0,
            delay_s: 0.0,
            deps: vec![0],
            job: 0,
        }];
        assert!(matches!(
            run_engine(&net, &flows),
            Err(NetError::BadConfig(_))
        ));
    }

    #[test]
    fn launch_delay_shifts_the_flow() {
        let net = star_cluster(4, 1e9, 0.0);
        let flows = vec![EngineFlow {
            src: 0,
            dst: 1,
            bytes: 1_000_000,
            release_s: 0.0,
            delay_s: 5e-6,
            deps: vec![],
            job: 0,
        }];
        let r = run_engine(&net, &flows).unwrap();
        assert!((r.makespan_s - (5e-6 + 1e-3)).abs() < 1e-12);
    }
}
