//! The fluid (flow-level) event loop.
//!
//! Rates are recomputed at every event (flow release, latency expiry or
//! completion); between events every flow progresses linearly at its
//! max-min fair rate. A flow first sits in a latency phase equal to the sum
//! of its route's link latencies, then competes for bandwidth.

use crate::error::{NetError, Result};
use crate::flow::FlowSpec;
use crate::graph::{LinkId, Network};
use crate::maxmin::maxmin_rates;
use serde::{Deserialize, Serialize};

/// Completion information for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowOutcome {
    /// Time the flow was released.
    pub release_s: f64,
    /// Time the flow finished delivering its payload.
    pub finish_s: f64,
}

/// Result of a fluid run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Completion time of the last flow, seconds.
    pub makespan_s: f64,
    /// Per-flow outcomes in submission order.
    pub flows: Vec<FlowOutcome>,
    /// Number of rate recomputations performed (a complexity metric).
    pub rate_recomputations: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Waiting for its release time.
    Pending,
    /// In the latency pipe until the given time.
    Latency(f64),
    /// Transmitting; `remaining` bytes to go.
    Active,
    Done,
}

/// Flow-level simulator over a [`Network`].
#[derive(Debug, Clone)]
pub struct FluidSimulator {
    net: Network,
    specs: Vec<FlowSpec>,
}

impl FluidSimulator {
    /// New simulator with no flows submitted.
    #[must_use]
    pub fn new(net: Network) -> Self {
        Self {
            net,
            specs: Vec::new(),
        }
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Queue a flow for the next [`FluidSimulator::run`].
    pub fn submit(&mut self, spec: FlowSpec) {
        self.specs.push(spec);
    }

    /// Queue many flows.
    pub fn submit_all<I: IntoIterator<Item = FlowSpec>>(&mut self, specs: I) {
        self.specs.extend(specs);
    }

    /// Run all submitted flows to completion and drain the queue.
    pub fn run(&mut self) -> Result<RunReport> {
        let specs = std::mem::take(&mut self.specs);
        run_flows(&self.net, &specs)
    }
}

/// Simulate `specs` over `net` and report completion times.
pub fn run_flows(net: &Network, specs: &[FlowSpec]) -> Result<RunReport> {
    let n = specs.len();
    if n == 0 {
        return Ok(RunReport {
            makespan_s: 0.0,
            flows: Vec::new(),
            rate_recomputations: 0,
        });
    }

    // Validate and pre-route everything up front.
    let mut routes: Vec<Vec<LinkId>> = Vec::with_capacity(n);
    let mut latencies: Vec<f64> = Vec::with_capacity(n);
    for s in specs {
        if s.bytes == 0 {
            return Err(NetError::EmptyFlow {
                src: s.src,
                dst: s.dst,
            });
        }
        routes.push(net.route(s.src, s.dst)?);
        latencies.push(net.route_latency(s.src, s.dst)?);
    }

    let mut phase: Vec<Phase> = vec![Phase::Pending; n];
    let mut remaining: Vec<f64> = specs.iter().map(|s| s.bytes as f64).collect();
    let mut finish: Vec<f64> = vec![0.0; n];
    let mut now = 0.0f64;
    let mut recomputations = 0usize;
    const EPS: f64 = 1e-9;

    loop {
        // Promote pending/latency flows whose timers expired.
        for i in 0..n {
            match phase[i] {
                Phase::Pending if specs[i].release_s() <= now + EPS => {
                    let ready = now + latencies[i];
                    phase[i] = if latencies[i] > 0.0 {
                        Phase::Latency(ready)
                    } else {
                        Phase::Active
                    };
                }
                Phase::Latency(t) if t <= now + EPS => phase[i] = Phase::Active,
                _ => {}
            }
        }

        // Gather active flows and compute rates.
        let active_idx: Vec<usize> = (0..n).filter(|&i| phase[i] == Phase::Active).collect();
        let rates: Vec<f64> = if active_idx.is_empty() {
            Vec::new()
        } else {
            recomputations += 1;
            let active_routes: Vec<Vec<LinkId>> =
                active_idx.iter().map(|&i| routes[i].clone()).collect();
            maxmin_rates(net, &active_routes)
        };

        // Earliest next event: release, latency expiry, or completion.
        let mut next = f64::INFINITY;
        for i in 0..n {
            match phase[i] {
                Phase::Pending => next = next.min(specs[i].release_s()),
                Phase::Latency(t) => next = next.min(t),
                _ => {}
            }
        }
        for (k, &i) in active_idx.iter().enumerate() {
            let rate = rates[k];
            if rate > 0.0 && rate.is_finite() {
                next = next.min(now + remaining[i] / rate);
            } else if rate == f64::INFINITY {
                next = next.min(now);
            }
        }

        if next == f64::INFINITY {
            break; // All done.
        }
        let dt = (next - now).max(0.0);

        // Advance active flows.
        for (k, &i) in active_idx.iter().enumerate() {
            let rate = rates[k];
            if rate == f64::INFINITY {
                remaining[i] = 0.0;
            } else {
                remaining[i] -= rate * dt;
            }
            if remaining[i] <= EPS {
                remaining[i] = 0.0;
                phase[i] = Phase::Done;
                finish[i] = next;
            }
        }
        now = next;

        if phase.iter().all(|&p| p == Phase::Done) {
            break;
        }
    }

    let makespan = finish.iter().copied().fold(0.0f64, f64::max);
    Ok(RunReport {
        makespan_s: makespan,
        flows: specs
            .iter()
            .zip(&finish)
            .map(|(s, &f)| FlowOutcome {
                release_s: s.release_s(),
                finish_s: f,
            })
            .collect(),
        rate_recomputations: recomputations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ring, star_cluster};

    #[test]
    fn single_flow_latency_plus_serialization() {
        let net = star_cluster(2, 1e9, 1e-6);
        let mut sim = FluidSimulator::new(net);
        sim.submit(FlowSpec::new(0, 1, 1_000_000)); // 1 MB
        let r = sim.run().unwrap();
        // 2 links of 1 us latency, then 1 MB at 1 GB/s = 1 ms.
        assert!((r.makespan_s - (2e-6 + 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn sharing_doubles_completion() {
        let net = star_cluster(4, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        sim.submit_all([
            FlowSpec::new(0, 1, 1_000_000),
            FlowSpec::new(0, 2, 1_000_000),
        ]);
        let r = sim.run().unwrap();
        assert!((r.makespan_s - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn freed_bandwidth_speeds_up_survivors() {
        let net = star_cluster(4, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        // Short and long flow share an uplink; after the short one finishes
        // the long one runs at full rate.
        sim.submit_all([FlowSpec::new(0, 1, 500_000), FlowSpec::new(0, 2, 1_500_000)]);
        let r = sim.run().unwrap();
        // Phase 1: both at 0.5 GB/s until the short flow ends at t=1ms
        // (0.5 MB each transferred). Phase 2: 1.0 MB left at 1 GB/s = 1 ms.
        assert!((r.flows[0].finish_s - 1e-3).abs() < 1e-9);
        assert!((r.flows[1].finish_s - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn staggered_release() {
        let net = star_cluster(4, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        sim.submit_all([
            FlowSpec::new(0, 1, 1_000_000),
            FlowSpec::released_at(0, 2, 1_000_000, 2e-3),
        ]);
        let r = sim.run().unwrap();
        // First finishes alone at 1 ms; second starts at 2 ms, alone, ends 3 ms.
        assert!((r.flows[0].finish_s - 1e-3).abs() < 1e-9);
        assert!((r.flows[1].finish_s - 3e-3).abs() < 1e-9);
    }

    #[test]
    fn ring_neighbor_exchange_is_contention_free() {
        let net = ring(8, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        sim.submit_all((0..8).map(|i| FlowSpec::new(i, (i + 1) % 8, 1_000_000)));
        let r = sim.run().unwrap();
        assert!((r.makespan_s - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn empty_run() {
        let net = star_cluster(2, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        let r = sim.run().unwrap();
        assert_eq!(r.makespan_s, 0.0);
    }

    #[test]
    fn zero_byte_flow_rejected() {
        let net = star_cluster(2, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        sim.submit(FlowSpec::new(0, 1, 0));
        assert!(sim.run().is_err());
    }

    #[test]
    fn submitting_after_run_starts_fresh() {
        let net = star_cluster(2, 1e9, 0.0);
        let mut sim = FluidSimulator::new(net);
        sim.submit(FlowSpec::new(0, 1, 1_000));
        sim.run().unwrap();
        sim.submit(FlowSpec::new(1, 0, 1_000));
        let r = sim.run().unwrap();
        assert_eq!(r.flows.len(), 1);
    }
}
