//! Quickstart: plan, verify and time a Wrht all-reduce on a 64-GPU
//! optical ring.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use collectives::verify_allreduce;
use optical_sim::OpticalConfig;
use wrht_core::describe::describe_plan;
use wrht_core::lower::to_logical_schedule;
use wrht_core::{plan_and_simulate, WrhtParams};

fn main() {
    // A 64-node TeraRack-style ring: 64 wavelengths x 25 Gb/s each.
    let n = 64;
    let config = OpticalConfig::paper_defaults(n);

    // All-reduce a 100 MB gradient; let the optimizer pick the group size.
    let gradient_bytes: u64 = 100 << 20;
    let params = WrhtParams::auto(n, config.wavelengths);
    let outcome = plan_and_simulate(&params, &config, gradient_bytes)
        .expect("planning a paper-default ring cannot fail");

    println!(
        "Wrht all-reduce on {n} nodes, {} MB gradient",
        gradient_bytes >> 20
    );
    println!("  chosen group size m . : {}", outcome.m);
    println!("  tree depth .......... : {}", outcome.plan.depth());
    println!("  communication steps . : {}", outcome.plan.step_count());
    println!(
        "  final representatives : {}",
        outcome.plan.final_reps.len()
    );
    println!(
        "  peak wavelengths .... : {} of {}",
        outcome.report.peak_wavelengths(),
        config.wavelengths
    );
    println!(
        "  predicted time ...... : {:.3} ms",
        outcome.predicted.total_s() * 1e3
    );
    println!(
        "  simulated time ...... : {:.3} ms",
        outcome.simulated_time_s * 1e3
    );

    println!();
    print!("{}", describe_plan(&outcome.plan));

    // Prove the schedule actually computes an all-reduce by executing it
    // logically over real buffers.
    let logical = to_logical_schedule(&outcome.plan, 1024);
    verify_allreduce(&logical).expect("Wrht schedules are correct by construction");
    println!("\ncorrectness: verified — every node holds the global sum");
}
