//! Simulator-backed training timeline: one data-parallel iteration of each
//! paper model with bucketed Wrht all-reduces executed on the optical ring
//! AND the electrical cluster — per-bucket ready/start/finish instants and
//! exposed-vs-hidden communication, straight from the simulators.
//!
//! ```text
//! cargo run --release --example training_timeline
//! ```

use wrht_bench::campaign::Algorithm;
use wrht_bench::timeline::{model_timeline, timeline_table, TimelineRow};
use wrht_bench::{ExperimentConfig, SubstrateKind};
use wrht_core::dag::ExecMode;

fn main() {
    let mut cfg = ExperimentConfig::default();
    let n = 64;
    cfg.scales = vec![n];
    let bucket_bytes = 25u64 << 20; // PyTorch DDP default

    println!("Wrht-backed training iteration on {n} nodes, 25 MB buckets");
    println!(
        "{:>10} {:>11} {:>8} {:>14} {:>14} {:>8}",
        "model", "substrate", "buckets", "overlapped ms", "sequential ms", "hidden"
    );
    let rows: Vec<TimelineRow> = timeline_table(&cfg, &dnn_models::paper_models(), n, bucket_bytes);
    for r in &rows {
        println!(
            "{:>10} {:>11} {:>8} {:>14.3} {:>14.3} {:>7.1}%",
            r.model,
            r.substrate,
            r.buckets,
            r.overlapped_s * 1e3,
            r.sequential_s * 1e3,
            r.hidden_fraction * 100.0
        );
    }

    // Bucket-level view of one model: when does each all-reduce launch,
    // how long did it wait for the network, how many substrate steps?
    let model = dnn_models::resnet50();
    let t = model_timeline(
        &cfg,
        &model,
        n,
        bucket_bytes,
        Algorithm::Wrht,
        SubstrateKind::Optical,
        optical_sim::Strategy::FirstFit,
        ExecMode::Barrier,
    )
    .expect("feasible timeline");
    println!();
    println!(
        "{} on the optical ring: compute ends at {:.3} ms, iteration at {:.3} ms",
        model.name,
        t.compute_s * 1e3,
        t.overlapped_s * 1e3
    );
    println!(
        "{:>4} {:>12} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "#", "layer", "MB", "ready ms", "start ms", "finish ms", "steps"
    );
    for (i, b) in t.buckets.iter().enumerate() {
        println!(
            "{:>4} {:>12} {:>10.1} {:>10.3} {:>10.3} {:>10.3} {:>6}",
            i,
            b.label,
            b.bytes as f64 / 1e6,
            b.ready_s * 1e3,
            b.start_s * 1e3,
            b.finish_s * 1e3,
            b.report.step_count()
        );
    }
}
