//! Multi-job tenancy: concurrent jobs sharing one substrate.
//!
//! Three tenants contend on one 32-node fabric — two bucketed GoogLeNet
//! training iterations arriving 2 ms apart, plus a background incast flood
//! aimed at node 0 — executed as **one** composed DAG run per substrate and
//! scheduling policy. The per-job table shows what tenancy costs each job
//! (slowdown vs running alone) and how the policy splits the pain (Jain
//! fairness index).
//!
//! The example also checks the serial-equivalence anchor on both
//! substrates: a cluster of ONE job, under every policy, reproduces a
//! direct `execute_dag` of that job's schedule bit-exactly.
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use wrht_bench::campaign::Algorithm;
use wrht_bench::contention::{generate_traffic, Pattern};
use wrht_bench::timeline::{iteration_model, lower_allreduce, timeline_buckets};
use wrht_bench::{ExperimentConfig, SubstrateKind};
use wrht_core::dag::DepSchedule;
use wrht_core::tenancy::{Job, SchedPolicy, TenancySpec};

fn main() {
    let mut cfg = ExperimentConfig::default();
    let n = 32;
    cfg.scales = vec![n];
    cfg.wavelengths = 8; // a narrow budget makes the contention visible
    let model = dnn_models::googlenet();

    // One training iteration: gradient buckets lowered to Wrht schedules.
    let im = iteration_model(&model);
    let compute_s = im.forward_s + im.backward_s;
    let buckets: Vec<_> = timeline_buckets(&model, 25 << 20)
        .iter()
        .map(|b| {
            let (schedule, _) =
                lower_allreduce(&cfg, Algorithm::Wrht, n, b.bytes).expect("lowerable bucket");
            (b.ready_s, schedule)
        })
        .collect();

    // Background traffic: a 64-transfer incast flood at node 0, arriving
    // midway through the first training job.
    let incast = generate_traffic(Pattern::Incast, n, 64, 4 << 20, 2023);
    assert_eq!(incast.len(), 64, "incast honours the requested count");

    let spec = |policy| {
        TenancySpec::new(policy)
            .with_job(
                Job::training("train-a", 0.0, buckets.clone())
                    .with_compute(compute_s)
                    .with_priority(2),
            )
            .with_job(
                Job::training("train-b", 2e-3, buckets.clone())
                    .with_compute(compute_s)
                    .with_priority(1),
            )
            .with_job(Job::dag(
                "incast-bg",
                1e-3,
                DepSchedule::from_released(&incast),
            ))
    };

    for kind in [SubstrateKind::Electrical, SubstrateKind::Optical] {
        // Serial-equivalence anchor: one job under every policy is
        // bit-exact with a direct execute_dag of its schedule.
        for policy in SchedPolicy::ALL {
            let solo = TenancySpec::new(policy)
                .with_job(Job::training("solo", 0.0, buckets.clone()).with_compute(compute_s));
            let mut substrate = cfg.substrate(kind, n, optical_sim::Strategy::FirstFit);
            let direct = substrate
                .execute_dag(&solo.jobs[0].workload.lower())
                .expect("direct run");
            let cluster = substrate.execute_jobs(&solo).expect("cluster run");
            assert_eq!(
                cluster.makespan_s.to_bits(),
                direct.makespan_s.to_bits(),
                "{kind:?}/{policy}: single tenant must equal execute_dag bit-exactly"
            );
        }

        for policy in SchedPolicy::ALL {
            let mut substrate = cfg.substrate(kind, n, optical_sim::Strategy::FirstFit);
            let report = substrate.execute_jobs(&spec(policy)).expect("cluster run");
            println!(
                "== {} / {} — makespan {:.3} ms, fairness {:.3} ==",
                report.substrate,
                report.policy,
                report.makespan_s * 1e3,
                report.fairness_index
            );
            println!(
                "{:>10} {:>10} {:>10} {:>10} {:>9} {:>8} {:>8}",
                "job", "arrive ms", "finish ms", "alone ms", "slowdown", "hidden", "share"
            );
            for j in &report.jobs {
                println!(
                    "{:>10} {:>10.3} {:>10.3} {:>10.3} {:>8.2}x {:>7.1}% {:>7.1}%",
                    j.name,
                    j.arrival_s * 1e3,
                    j.finish_s * 1e3,
                    j.isolated_s * 1e3,
                    j.slowdown,
                    j.hidden_fraction * 100.0,
                    j.bandwidth_share * 100.0
                );
            }
            println!();
        }
    }
}
