//! Transformer gradients over the optical ring: how Wrht scales to
//! GPT-2/BERT-class models (an extension workload beyond the paper's CNNs).
//!
//! ```text
//! cargo run --release --example transformer_scaling
//! ```

use dnn_models::transformer::{bert_large, gpt2_small};
use wrht_bench::{fig2_row, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    for model in [gpt2_small(), bert_large()] {
        println!(
            "{} — {:.1} M params, {:.0} MB gradient",
            model.name,
            model.params() as f64 / 1e6,
            model.gradient_bytes() as f64 / 1e6
        );
        println!(
            "{:>6} {:>12} {:>12} {:>12} {:>12} {:>4}",
            "nodes", "E-Ring ms", "RD ms", "O-Ring ms", "WRHT ms", "m"
        );
        for &n in &[128usize, 512] {
            let r = fig2_row(&cfg, n, model.gradient_bytes());
            println!(
                "{:>6} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>4}",
                n,
                r.e_ring_s * 1e3,
                r.rd_s * 1e3,
                r.o_ring_s * 1e3,
                r.wrht_s * 1e3,
                r.wrht_m
            );
        }
        println!();
    }
}
