//! Compare every implemented all-reduce algorithm — logical correctness,
//! step counts, bytes moved, and simulated time on both substrates — for a
//! configurable node count.
//!
//! ```text
//! cargo run --release --example compare_algorithms -- [nodes]
//! ```

use collectives::analysis::analyze;
use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::tree::binomial_tree;
use collectives::{verify_allreduce, Schedule};
use optical_sim::Strategy;
use wrht_bench::{ExperimentConfig, SubstrateKind};
use wrht_core::baselines::run_collective;
use wrht_core::{plan_and_simulate, WrhtParams};

/// Time a logical schedule on either fabric through the one `Substrate` API.
fn substrate_time(
    cfg: &ExperimentConfig,
    kind: SubstrateKind,
    n: usize,
    sched: &Schedule,
    lanes: usize,
) -> f64 {
    let mut substrate = cfg.substrate(kind, n, Strategy::FirstFit);
    run_collective(substrate.as_mut(), sched, cfg.bytes_per_elem, lanes)
        .expect("baseline run")
        .total_time_s
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    let cfg = ExperimentConfig::default();
    let elems = 25 << 20 >> 2; // 25 MB of fp32 gradients
    let bytes = (elems * cfg.bytes_per_elem) as u64;

    println!("All-reduce of {} MB across {n} nodes", bytes >> 20);
    println!(
        "{:>18} {:>7} {:>14} {:>14} {:>14} {:>8} {:>8}",
        "algorithm", "steps", "elems moved", "electrical ms", "optical ms", "bw-opt", "lat-opt"
    );

    type Builder = fn(usize, usize) -> Schedule;
    let algorithms: Vec<(&str, Builder)> = vec![
        ("ring", ring_allreduce as Builder),
        ("recursive-doubling", recursive_doubling as Builder),
        ("halving-doubling", halving_doubling as Builder),
        ("binomial-tree", binomial_tree as Builder),
    ];

    for (name, build) in &algorithms {
        // Prove correctness on a small instance (executing 25 MB buffers
        // per node logically would be needlessly slow), then time the
        // full-size schedule on both substrates.
        verify_allreduce(&build(n, 64)).expect("all baselines are correct");
        let sched = &build(n, elems);
        let a = analyze(sched);
        println!(
            "{:>18} {:>7} {:>14} {:>14.3} {:>14.3} {:>8.2} {:>8.2}",
            name,
            sched.step_count(),
            sched.total_elems_moved(),
            substrate_time(&cfg, SubstrateKind::Electrical, n, sched, 1) * 1e3,
            substrate_time(&cfg, SubstrateKind::Optical, n, sched, 1) * 1e3,
            a.bandwidth_optimality(n, elems),
            a.latency_optimality(n)
        );
    }

    let outcome = plan_and_simulate(
        &WrhtParams::auto(n, cfg.wavelengths),
        &cfg.optical(n),
        bytes,
    )
    .expect("Wrht plan");
    println!(
        "{:>18} {:>7} {:>14} {:>14} {:>14.3}",
        format!("wrht(m={})", outcome.m),
        outcome.plan.step_count(),
        "-",
        "-",
        outcome.simulated_time_s * 1e3
    );
}
