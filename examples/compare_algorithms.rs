//! Compare every implemented all-reduce algorithm — logical correctness,
//! step counts, bytes moved, and simulated time on both substrates — for a
//! configurable node count.
//!
//! ```text
//! cargo run --release --example compare_algorithms -- [nodes]
//! ```

use collectives::analysis::analyze;
use collectives::halving_doubling::halving_doubling;
use collectives::rd::recursive_doubling;
use collectives::ring::ring_allreduce;
use collectives::tree::binomial_tree;
use collectives::{verify_allreduce, Schedule};
use electrical_sim::runner::{run_steps, StepTransfer};
use optical_sim::{RingSimulator, Strategy};
use wrht_bench::ExperimentConfig;
use wrht_core::baselines::lower_collective_to_optical;
use wrht_core::{plan_and_simulate, WrhtParams};

fn electrical_time(cfg: &ExperimentConfig, n: usize, sched: &Schedule) -> f64 {
    let net = cfg.electrical(n);
    let steps: Vec<Vec<StepTransfer>> = sched
        .step_transfers(cfg.bytes_per_elem)
        .into_iter()
        .map(|s| {
            s.into_iter()
                .filter(|&(_, _, b)| b > 0)
                .map(|(src, dst, bytes)| StepTransfer { src, dst, bytes })
                .collect()
        })
        .collect();
    run_steps(&net, &steps, cfg.electrical_step_overhead_s)
        .expect("fluid run")
        .total_time_s
}

fn optical_time(cfg: &ExperimentConfig, n: usize, sched: &Schedule, lanes: usize) -> f64 {
    let mut sim = RingSimulator::new(cfg.optical(n));
    sim.run_stepped(
        &lower_collective_to_optical(sched, cfg.bytes_per_elem, lanes),
        Strategy::FirstFit,
    )
    .expect("optical run")
    .total_time_s
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    let cfg = ExperimentConfig::default();
    let elems = 25 << 20 >> 2; // 25 MB of fp32 gradients
    let bytes = (elems * cfg.bytes_per_elem) as u64;

    println!("All-reduce of {} MB across {n} nodes", bytes >> 20);
    println!(
        "{:>18} {:>7} {:>14} {:>14} {:>14} {:>8} {:>8}",
        "algorithm", "steps", "elems moved", "electrical ms", "optical ms", "bw-opt", "lat-opt"
    );

    type Builder = fn(usize, usize) -> Schedule;
    let algorithms: Vec<(&str, Builder)> = vec![
        ("ring", ring_allreduce as Builder),
        ("recursive-doubling", recursive_doubling as Builder),
        ("halving-doubling", halving_doubling as Builder),
        ("binomial-tree", binomial_tree as Builder),
    ];

    for (name, build) in &algorithms {
        // Prove correctness on a small instance (executing 25 MB buffers
        // per node logically would be needlessly slow), then time the
        // full-size schedule on both substrates.
        verify_allreduce(&build(n, 64)).expect("all baselines are correct");
        let sched = &build(n, elems);
        let a = analyze(sched);
        println!(
            "{:>18} {:>7} {:>14} {:>14.3} {:>14.3} {:>8.2} {:>8.2}",
            name,
            sched.step_count(),
            sched.total_elems_moved(),
            electrical_time(&cfg, n, sched) * 1e3,
            optical_time(&cfg, n, sched, 1) * 1e3,
            a.bandwidth_optimality(n, elems),
            a.latency_optimality(n)
        );
    }

    let outcome = plan_and_simulate(
        &WrhtParams::auto(n, cfg.wavelengths),
        &cfg.optical(n),
        bytes,
    )
    .expect("Wrht plan");
    println!(
        "{:>18} {:>7} {:>14} {:>14} {:>14.3}",
        format!("wrht(m={})", outcome.m),
        outcome.plan.step_count(),
        "-",
        "-",
        outcome.simulated_time_s * 1e3
    );
}
