//! Open-loop cluster service: online arrivals through the running kernel.
//!
//! A Poisson stream of GoogLeNet training jobs (a high- and a low-priority
//! template) arrives at a shared 32-node fabric faster than it drains, so
//! admission control matters: `Immediate` lets the backlog grow,
//! `QueueDepth` bounds the waiting line, `Reject` sheds load outright. The
//! example serves the same stream on both substrates under each rule and
//! prints the per-run summary plus the windowed utilization/latency
//! trajectory of one configuration.
//!
//! It also exercises the checkpoint contract: the stream is paused halfway
//! through its arrivals, the snapshot is round-tripped through JSON, and
//! the resumed run must reproduce the uninterrupted report byte-for-byte.
//!
//! ```text
//! cargo run --release --example open_loop_service
//! ```

use wrht_bench::campaign::Algorithm;
use wrht_bench::report::to_json;
use wrht_bench::timeline::{lower_allreduce, timeline_buckets};
use wrht_bench::{ExperimentConfig, SubstrateKind};
use wrht_core::stream::{Admission, ArrivalProcess, StreamSpec, StreamTemplate};
use wrht_core::tenancy::JobWorkload;

fn main() {
    let mut cfg = ExperimentConfig::default();
    let n = 32;
    cfg.scales = vec![n];
    cfg.wavelengths = 8; // a narrow budget makes the queueing visible
    let model = dnn_models::googlenet();

    // One training iteration as chained gradient buckets, reused by both
    // templates; only the scheduling priority differs.
    let buckets: Vec<_> = timeline_buckets(&model, 25 << 20)
        .iter()
        .map(|b| {
            let (schedule, _) =
                lower_allreduce(&cfg, Algorithm::Wrht, n, b.bytes).expect("lowerable bucket");
            (b.ready_s, schedule)
        })
        .collect();

    let spec = |admission| {
        StreamSpec::new(
            ArrivalProcess::Poisson {
                rate_hz: 400.0,
                count: 24,
                seed: 2023,
            },
            wrht_core::tenancy::SchedPolicy::Priority,
        )
        .with_template(
            StreamTemplate::new("train-hi", JobWorkload::Buckets(buckets.clone())).with_priority(2),
        )
        .with_template(
            StreamTemplate::new("train-lo", JobWorkload::Buckets(buckets.clone())).with_priority(1),
        )
        .with_admission(admission)
        .with_window(10e-3)
        .with_reference_bps(cfg.lambda_bandwidth_bps * cfg.wavelengths as f64 * n as f64)
    };

    let admissions = [
        Admission::Immediate,
        Admission::QueueDepth { limit: 2 },
        Admission::Reject { limit: 4 },
    ];

    println!(
        "{:>10} {:>11} {:>6} {:>7} {:>12} {:>9} {:>9} {:>9} {:>7} {:>6}",
        "substrate",
        "admission",
        "admit",
        "reject",
        "makespan ms",
        "slow p50",
        "slow p99",
        "p999",
        "peak q",
        "fair"
    );
    for kind in [SubstrateKind::Electrical, SubstrateKind::Optical] {
        for admission in admissions {
            let report = cfg
                .substrate(kind, n, optical_sim::Strategy::FirstFit)
                .execute_stream(&spec(admission))
                .expect("stream run");
            println!(
                "{:>10} {:>11} {:>6} {:>7} {:>12.3} {:>8.2}x {:>8.2}x {:>8.2}x {:>7} {:>6.3}",
                report.substrate,
                admission.label(),
                report.admitted,
                report.rejected,
                report.makespan_s * 1e3,
                report.slowdown.p50,
                report.slowdown.p99,
                report.slowdown.p999,
                report.peak_queue_depth,
                report.fairness_index
            );
        }
    }

    // Windowed trajectory of the optical Immediate run: utilization climbs
    // while the backlog builds, then drains.
    let report = cfg
        .substrate(SubstrateKind::Optical, n, optical_sim::Strategy::FirstFit)
        .execute_stream(&spec(Admission::Immediate))
        .expect("stream run");
    println!("\nWindows of optical/immediate ({} ms each):", 10.0);
    println!(
        "{:>9} {:>8} {:>8} {:>6} {:>8} {:>7} {:>8}",
        "start ms", "arrive", "finish", "util", "slow p99", "queue", "running"
    );
    for w in &report.windows {
        println!(
            "{:>9.1} {:>8} {:>8} {:>5.1}% {:>7.2}x {:>7} {:>8}",
            w.start_s * 1e3,
            w.arrivals,
            w.completed,
            w.utilization * 100.0,
            w.slowdown.p99,
            w.queue_depth,
            w.in_service
        );
    }

    // Checkpoint contract: pause at arrival 12, JSON round-trip, resume —
    // byte-identical to the uninterrupted run.
    let full = cfg
        .substrate(SubstrateKind::Optical, n, optical_sim::Strategy::FirstFit)
        .execute_stream(&spec(Admission::QueueDepth { limit: 2 }))
        .expect("uninterrupted run");
    let ck = cfg
        .substrate(SubstrateKind::Optical, n, optical_sim::Strategy::FirstFit)
        .execute_stream_until(&spec(Admission::QueueDepth { limit: 2 }), Some(12))
        .expect("paused run")
        .checkpoint()
        .expect("paused before the last arrival");
    let json = serde_json::to_string(&ck).expect("checkpoint serializes");
    let back = serde_json::from_str(&json).expect("checkpoint deserializes");
    let resumed = cfg
        .substrate(SubstrateKind::Optical, n, optical_sim::Strategy::FirstFit)
        .resume_stream(&spec(Admission::QueueDepth { limit: 2 }), &back, None)
        .expect("resumed run")
        .report()
        .expect("resume to completion");
    assert_eq!(
        to_json(&resumed),
        to_json(&full),
        "resume must be byte-identical to the uninterrupted run"
    );
    println!(
        "\nCheckpoint at arrival 12: {} bytes of JSON; resumed run is byte-identical.",
        json.len()
    );
}
