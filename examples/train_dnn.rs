//! Data-parallel DNN training communication: per-iteration all-reduce time
//! of the paper's four models on 256 GPUs, under all four algorithms, plus
//! the layer-wise bucketed overlap extension.
//!
//! ```text
//! cargo run --release --example train_dnn
//! ```

use wrht_bench::ablations::overlap_study;
use wrht_bench::{fig2_row, ExperimentConfig};

fn main() {
    let mut cfg = ExperimentConfig::default();
    let n = 256;
    cfg.scales = vec![n];

    println!("Per-iteration gradient all-reduce on {n} GPUs");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>4}",
        "model", "grad MB", "E-Ring ms", "RD ms", "O-Ring ms", "WRHT ms", "m"
    );
    for model in dnn_models::paper_models() {
        let row = fig2_row(&cfg, n, model.gradient_bytes());
        println!(
            "{:>10} {:>10.1} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>4}",
            model.name,
            model.gradient_bytes() as f64 / 1e6,
            row.e_ring_s * 1e3,
            row.rd_s * 1e3,
            row.o_ring_s * 1e3,
            row.wrht_s * 1e3,
            row.wrht_m
        );
    }

    println!();
    println!("Layer-wise bucketed Wrht all-reduce (25 MB buckets) with overlap:");
    println!(
        "{:>10} {:>8} {:>14} {:>14} {:>8}",
        "model", "buckets", "overlapped ms", "sequential ms", "hidden"
    );
    for model in dnn_models::paper_models() {
        let p = overlap_study(&cfg, &model, n, 25 << 20);
        println!(
            "{:>10} {:>8} {:>14.3} {:>14.3} {:>7.1}%",
            p.model,
            p.buckets,
            p.overlapped_s * 1e3,
            p.sequential_s * 1e3,
            p.hidden_fraction * 100.0
        );
    }
}
