//! How Wrht's advantage scales with the WDM budget: sweep the number of
//! wavelengths per waveguide and watch the optimizer adapt the group size.
//!
//! ```text
//! cargo run --release --example wavelength_sweep
//! ```

use wrht_bench::ablations::wavelength_sweep;
use wrht_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::default();
    let n = 512;
    let bytes = dnn_models::vgg16().gradient_bytes();

    println!(
        "VGG16 ({:.0} MB) all-reduce on a {n}-node optical ring, sweeping w:",
        bytes as f64 / 1e6
    );
    println!(
        "{:>4} {:>12} {:>6} {:>12} {:>9}",
        "w", "WRHT ms", "m", "O-Ring ms", "speedup"
    );
    for p in wavelength_sweep(&cfg, n, bytes, &[1, 2, 4, 8, 16, 32, 64, 128]) {
        println!(
            "{:>4} {:>12.3} {:>6} {:>12.3} {:>8.1}x",
            p.w,
            p.wrht_s * 1e3,
            p.chosen_m,
            p.o_ring_s * 1e3,
            p.o_ring_s / p.wrht_s
        );
    }
    println!();
    println!("O-Ring uses a single wavelength regardless of w (the deficiency");
    println!("Wrht exploits); with w = 1 the two coincide in spirit: Wrht's");
    println!("tree still wins on step count.");
}
