//! Mixed-parallelism lowering on the composed hierarchical substrate:
//! a TP/PP/DP (+ MoE) transformer iteration as ONE dependency DAG,
//! co-simulated on per-group optical rings plus an electrical
//! inter-group cluster.
//!
//! ```text
//! cargo run --release --example mixed_parallelism
//! ```

use dnn_models::transformer::gpt2_small;
use optical_sim::Strategy;
use wrht_bench::ExperimentConfig;
use wrht_core::hierarchy::Domain;
use wrht_core::parallelism::{lower_parallelism, ParallelismSpec, StageModel};
use wrht_core::substrate::Substrate;

fn main() {
    let cfg = ExperimentConfig::default();
    let model = gpt2_small();
    println!(
        "{} — {:.0} MB gradient, lowered under tp x pp x dp (+ MoE experts)",
        model.name,
        model.gradient_bytes() as f64 / 1e6
    );
    println!(
        "{:>3} {:>3} {:>3} {:>4} {:>6} {:>7} {:>6} {:>6} {:>13}",
        "tp", "pp", "dp", "moe", "nodes", "xfers", "intra", "inter", "makespan ms"
    );
    for (tp, pp, dp, moe) in [(4, 1, 1, 0), (2, 2, 2, 0), (2, 2, 2, 4)] {
        let spec = ParallelismSpec::new(tp, pp, dp, moe, 2).expect("valid degrees");
        let stages = StageModel::split(model.gradient_bytes(), spec.pp, 8 << 20);
        let dag = lower_parallelism(&spec, &stages).expect("lowerable spec");
        let hier = spec.hier().expect("valid hierarchy");
        let domains = hier.domains(&dag).expect("endpoints in range");
        let intra = domains
            .iter()
            .filter(|d| matches!(d, Domain::Intra { .. }))
            .count();
        let mut substrate = cfg
            .try_composed(hier, Strategy::FirstFit)
            .expect("buildable fabrics");
        let report = substrate.execute_dag(&dag).expect("DAG executes");
        println!(
            "{:>3} {:>3} {:>3} {:>4} {:>6} {:>7} {:>6} {:>6} {:>13.3}",
            tp,
            pp,
            dp,
            moe,
            hier.nodes(),
            dag.len(),
            intra,
            dag.len() - intra,
            report.makespan_s * 1e3
        );
    }
}
