//! Fault storm: a multi-tenant cluster rides out a link-flap storm.
//!
//! Two bucketed GoogLeNet training tenants share one 32-node fabric while a
//! storm of link flaps (and, optically, a wavelength loss) marches across
//! the run. Each substrate executes the SAME composed DAG clean and
//! faulted; the diff is the blast radius — per-job aborts, delays,
//! failures — plus the recovery time and degraded-vs-clean makespan ratio.
//!
//! ```text
//! cargo run --release --example fault_storm
//! ```

use wrht_bench::campaign::Algorithm;
use wrht_bench::timeline::{iteration_model, lower_allreduce, timeline_buckets};
use wrht_bench::{ExperimentConfig, SubstrateKind};
use wrht_core::fault::{FaultKind, FaultPolicy, FaultScript};
use wrht_core::tenancy::{Job, SchedPolicy, TenancySpec};

fn main() {
    let mut cfg = ExperimentConfig::default();
    let n = 32;
    cfg.scales = vec![n];
    cfg.wavelengths = 8;
    let model = dnn_models::googlenet();

    let im = iteration_model(&model);
    let compute_s = im.forward_s + im.backward_s;
    let buckets: Vec<_> = timeline_buckets(&model, 25 << 20)
        .iter()
        .map(|b| {
            let (schedule, _) =
                lower_allreduce(&cfg, Algorithm::Wrht, n, b.bytes).expect("lowerable bucket");
            (b.ready_s, schedule)
        })
        .collect();

    let spec = TenancySpec::new(SchedPolicy::Fifo)
        .with_job(
            Job::training("train-a", 0.0, buckets.clone())
                .with_compute(compute_s)
                .with_priority(2),
        )
        .with_job(
            Job::training("train-b", 2e-3, buckets.clone())
                .with_compute(compute_s)
                .with_priority(1),
        );

    for kind in [SubstrateKind::Electrical, SubstrateKind::Optical] {
        // Size the storm against the clean run: flaps at 20/40/60 % of the
        // clean makespan, each lasting 5 % of it, walking across three
        // links; optically a wavelength drops at 30 % and is repaired at
        // 70 %. (Wavelength events are electrically meaningless and link
        // events optically meaningless — one script serves both.)
        let mut substrate = cfg.substrate(kind, n, optical_sim::Strategy::FirstFit);
        let clean = substrate.execute_jobs(&spec).expect("clean cluster run");
        let t = clean.makespan_s;
        let mut script = FaultScript::new()
            .with(0.3 * t, FaultKind::WavelengthDown { lane: 0 })
            .with(0.7 * t, FaultKind::WavelengthUp { lane: 0 });
        for (i, frac) in [0.2, 0.4, 0.6].iter().enumerate() {
            script = script.with(
                frac * t,
                FaultKind::LinkFlap {
                    link: i,
                    down_s: 0.05 * t,
                },
            );
        }

        for policy in [FaultPolicy::Replan, FaultPolicy::RetryAfter(0.02 * t)] {
            let mut substrate = cfg.substrate(kind, n, optical_sim::Strategy::FirstFit);
            let report = substrate
                .execute_jobs_faulted(&spec, &script, policy)
                .expect("faulted cluster run");

            println!(
                "== {} / {} — clean {:.3} ms, faulted {:.3} ms ({:.2}x), recovery {:.3} ms ==",
                report.substrate,
                report.fault_policy,
                report.clean_makespan_s * 1e3,
                report.makespan_s * 1e3,
                report.degraded_ratio,
                report.recovery_s * 1e3,
            );
            println!(
                "{:>10} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}",
                "job", "transfers", "aborted", "delayed", "failed", "clean ms", "finish ms"
            );
            for j in &report.jobs {
                println!(
                    "{:>10} {:>10} {:>8} {:>8} {:>8} {:>10.3} {:>10.3}",
                    j.name,
                    j.transfers,
                    j.aborted,
                    j.delayed,
                    j.failed,
                    j.clean_finish_s * 1e3,
                    j.finish_s * 1e3,
                );
            }
            println!();

            // The storm lands mid-run, so the report must carry a real
            // recovery trajectory: an impact instant inside the run and a
            // recovery window that ends at an impacted transfer's finish.
            let impact = report
                .first_impact_s
                .expect("a mid-run storm must impact at least one transfer");
            assert!(impact >= 0.0 && impact <= report.makespan_s.max(report.clean_makespan_s));
            assert!(
                report.transfers_delayed > 0
                    || report.transfers_aborted > 0
                    || report.transfers_failed > 0,
                "storm had zero blast radius"
            );
            assert!(report.recovery_s > 0.0, "impact without a recovery window");
            assert!(
                impact + report.recovery_s <= report.makespan_s + 1e-9,
                "recovery window must close inside the faulted run"
            );
            // Nobody died: flaps degrade and abort but both tenants finish.
            assert_eq!(report.failed_jobs(), 0, "a flap storm must not kill jobs");
        }
    }
    println!("fault storm absorbed: both tenants recovered on both substrates");
}
