//! Barrier vs pipelined execution, end to end.
//!
//! 1. A single collective: the same ring / halving-doubling / Wrht
//!    schedule executed step-synchronously (`Substrate::execute`) and as a
//!    dependency-aware DAG (`Substrate::execute_dag` over the per-node
//!    pipelined lowering) on both substrates.
//! 2. A training iteration: bucketed Wrht all-reduces serialized on the
//!    network (barrier) vs chained into one DAG so consecutive buckets
//!    overlap on the wire (pipelined).
//!
//! ```text
//! cargo run --release --example pipelined_timeline
//! ```

use wrht_bench::campaign::Algorithm;
use wrht_bench::timeline::{lower_allreduce, model_timeline};
use wrht_bench::{ExperimentConfig, SubstrateKind};
use wrht_core::dag::{DepSchedule, ExecMode};

fn main() {
    let mut cfg = ExperimentConfig::default();
    let n = 64;
    cfg.scales = vec![n];
    let bytes = dnn_models::alexnet().gradient_bytes();

    println!(
        "== One all-reduce of {:.1} MB on {n} nodes ==",
        bytes as f64 / 1e6
    );
    println!(
        "{:>6} {:>11} {:>12} {:>13} {:>8} {:>9}",
        "algo", "substrate", "barrier ms", "pipelined ms", "speedup", "dag edges"
    );
    for algorithm in [Algorithm::Ring, Algorithm::HalvingDoubling, Algorithm::Wrht] {
        let (schedule, _) = lower_allreduce(&cfg, algorithm, n, bytes).expect("lowerable");
        let dag = DepSchedule::pipelined_from_steps(&schedule);
        for kind in [SubstrateKind::Electrical, SubstrateKind::Optical] {
            let mut substrate = cfg.substrate(kind, n, optical_sim::Strategy::FirstFit);
            let barrier = substrate.execute(&schedule).expect("barrier run");
            let pipelined = substrate.execute_dag(&dag).expect("pipelined run");
            println!(
                "{:>6} {:>11} {:>12.3} {:>13.3} {:>7.2}x {:>9}",
                algorithm.label(),
                substrate.name(),
                barrier.total_time_s * 1e3,
                pipelined.makespan_s * 1e3,
                barrier.total_time_s / pipelined.makespan_s,
                dag.edge_count(),
            );
        }
    }

    println!();
    println!("== Training iteration: barrier vs pipelined bucket execution ==");
    println!(
        "{:>10} {:>11} {:>13} {:>14} {:>8}",
        "model", "substrate", "barrier ms", "pipelined ms", "hidden"
    );
    for model in dnn_models::paper_models() {
        for kind in [SubstrateKind::Electrical, SubstrateKind::Optical] {
            let run = |mode| {
                model_timeline(
                    &cfg,
                    &model,
                    n,
                    25 << 20,
                    Algorithm::Wrht,
                    kind,
                    optical_sim::Strategy::FirstFit,
                    mode,
                )
                .expect("feasible timeline")
            };
            let barrier = run(ExecMode::Barrier);
            let pipelined = run(ExecMode::Pipelined);
            println!(
                "{:>10} {:>11} {:>13.3} {:>14.3} {:>7.1}%",
                model.name,
                pipelined.substrate,
                barrier.overlapped_s * 1e3,
                pipelined.overlapped_s * 1e3,
                pipelined.hidden_fraction * 100.0
            );
        }
    }
}
